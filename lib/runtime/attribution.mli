(** Per-method cycle attribution and a calling-context tree.

    When installed on the VM ({!Interp.enable_attribution}), every method
    invocation is bracketed by {!enter}/{!leave} stamped with the
    simulated cycle clock, accruing per method: self cycles and
    invocation counts split by tier, total cycles (counted once per
    method while it is anywhere on the stack, so recursion does not
    double-count), and deoptimization counts. A calling-context tree
    interns one node per (parent, method) pair and accrues per-node self
    cycles — the shape flamegraph folded-stack lines want.

    Driven entirely by the simulated clock and a deterministic stack
    discipline: reports are byte-identical across same-seed runs.
    Methods are plain ids; the caller supplies names at render time. *)

type tier = Interp | Prepared | Jit
(** [Jit]: installed compiled code. [Prepared]/[Interp]: the interpreted
    tier under the prepared and reference backends respectively. *)

val tier_name : tier -> string

type t

val create : unit -> t

val enter : t -> meth:int -> tier:tier -> now:int -> unit
val leave : t -> now:int -> unit
(** Bracket one activation. [leave] pops the innermost frame; cycles of
    the frame minus cycles of its callees accrue as self time to both
    the method and its context-tree node. *)

val record_deopt : t -> int -> unit
(** The engine invalidated this method's compiled code. *)

val record_evict : t -> int -> unit
(** The bounded code cache evicted this method's compiled code (capacity
    pressure, not a correctness event — split from deopts so reports can
    tell churn from speculation failure). *)

type row = {
  r_meth : int;
  r_self : int;                  (** self cycles across tiers *)
  r_total : int;                 (** cycles with the method on the stack *)
  r_invocations : int;
  r_self_by_tier : int * int * int;          (** interp, prepared, jit *)
  r_invocations_by_tier : int * int * int;   (** interp, prepared, jit *)
  r_deopts : int;
  r_evicts : int;
}

val rows : t -> row list
(** Per-method totals, hottest (self cycles) first, ties by method id. *)

val folded : t -> name:(int -> string) -> string list
(** Flamegraph-ready folded stacks: one ["root;...;leaf cycles"] line per
    context-tree node with nonzero self time, sorted lexicographically. *)
