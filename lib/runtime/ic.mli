(** Per-call-site polymorphic inline caches (PICs) for virtual dispatch in
    the prepared execution engine: the monomorphic → polymorphic →
    megamorphic progression of classic Smalltalk/Self/HotSpot call sites.
    A repeat receiver class resolves its target in a short linear scan
    (one comparison when monomorphic) instead of a class-table walk.

    ICs cache {e resolution only} — the target still goes through the
    interpreter's [invoke], so tier dispatch, hotness detection and
    pending installs behave identically to the uncached path. Entries
    carry the profile's receiver-histogram cell for their (site, class),
    making a cached profiled dispatch's receiver record a single
    increment. Coherence: {!Interp} drops a method's ICs (retiring their
    counters) whenever its code is installed, replaced or invalidated. *)

open Ir.Types

type entry = {
  e_cls : class_id;
  e_target : meth_id;
  e_count : int ref;
      (** the profile's receiver cell for (site, class); a dummy cell in
          non-profiling tiers *)
}

type t = {
  ic_site : site;
  selector : string;
  mutable entries : entry array;  (** observed classes, oldest first *)
  mutable megamorphic : bool;     (** depth exhausted; entries still hit *)
  mutable hits : int;
  mutable misses : int;
  mutable mega : int;  (** slow-path dispatches while megamorphic *)
}

val depth : int
(** Polymorphic degree before a site goes megamorphic (4). *)

val create : site:site -> selector:string -> t

val probe : t -> class_id -> entry option
(** Linear scan of the cached entries. *)

val note_miss : t -> unit
(** Records a failed probe (a miss, or a megamorphic dispatch once the
    depth is exhausted). Call before {!add}. *)

val add : t -> entry -> unit
(** Installs a freshly resolved entry; past {!depth} the site turns
    megamorphic and keeps its existing entries. *)

val dispatches : t -> int
(** [hits + misses + mega]. *)

val reset : t -> unit
(** Forgets the cached resolutions (not the counters). *)

val reset_stats : t -> unit
(** Zeroes the counters (after folding them into retired stats). *)
