(** Runtime profiles — the moral equivalent of HotSpot's profiling data:
    invocation counters, per-block execution counts (subsuming branch and
    backedge counters) and per-callsite receiver histograms. Keys are
    stable across IR copying and inlining: methods by id, blocks by
    (method, block id), callsites by their {!Ir.Types.site}.

    Counters are slot-indexed — dense arrays by method/block/site ordinal
    instead of tuple-keyed hashtables — so recording allocates nothing.
    The counter cells have stable identity and can be handed out: the
    prepared execution engine bakes them into pre-decoded code and inline
    caches, and an increment through a baked cell is indistinguishable
    from the corresponding [record_*] call in the folded profile. *)

open Ir.Types

type t

type rsite
(** The receiver histogram of one call site. *)

type brec = { mutable taken : int; mutable not_taken : int }
(** The taken/not-taken counters of one branch site. *)

val create : unit -> t

val generation : t -> int
(** Bumped by every {!clear}. Holders of baked cells compare generations
    to detect that their cells no longer belong to the profile. *)

(** {1 Recording (used by the interpreter)} *)

val record_invocation : t -> meth_id -> unit
val record_block : t -> meth_id -> bid -> unit
val record_receiver : t -> site -> class_id -> unit
val record_branch : t -> site -> taken:bool -> unit

(** {1 Counter cells (used by the prepared engine's baked profiling)}

    Find-or-create accessors returning the underlying cell. Cells are
    valid for the profile's current {!generation} only. *)

val block_cell : t -> meth_id -> bid -> int ref
val branch_cell : t -> site -> brec

val brec_record : brec -> taken:bool -> unit
(** [brec_record br ~taken] is [record_branch] through a bound cell. *)

val receiver_site : t -> site -> rsite
val find_receiver_site : t -> site -> rsite option
(** Like {!receiver_site} but never creates the site. *)

val rsite_cell : rsite -> class_id -> int ref
val find_rsite_cell : rsite -> class_id -> int ref option
val rsite_distinct : rsite -> int
(** Distinct receiver classes recorded in the histogram, in O(1). *)

(** {1 Queries (used by the inliner and cost model)} *)

val invocation_count : t -> meth_id -> int
val block_count : t -> meth_id -> bid -> int

val max_block_count : t -> meth_id -> int
(** The hottest block count recorded for a method — the loop-hotness
    signal folded into the engine's compile trigger. 0 when nothing was
    recorded. *)

val hot_blocks : t -> meth_id -> threshold:int -> (bid * int) list
(** The sequence-mining frontier for superinstruction fusion: blocks of
    the method whose execution count is at least [threshold], with their
    counts, in block-id order. *)

val receiver_count : t -> site -> int
(** Number of distinct receiver classes observed at a site, in O(1) —
    equal to [List.length (receiver_profile t site)] whenever the site has
    been executed. The interpreter uses this on every virtual call. *)

val receiver_profile : t -> site -> (class_id * float) list
(** Receiver histogram as (class, probability), most frequent first;
    probabilities sum to 1. Empty when the site was never executed. *)

val branch_prob : t -> site -> float option
(** Probability the branch was taken; [None] when never executed. *)

val clear : t -> unit
(** Resets every counter and advances the {!generation}. *)

(** {1 Text serialization}

    Deterministic line-based format (see the implementation header). Ids
    are only meaningful against the same prepared program. *)

exception Bad_profile of string

val to_text : t -> string

val of_text : string -> t
(** Duplicate records accumulate, so the concatenation of several dumps
    loads as their merge (summed counts).
    @raise Bad_profile on malformed input or negative counts. *)
