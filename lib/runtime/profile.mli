(** Runtime profiles — the moral equivalent of HotSpot's profiling data:
    invocation counters, per-block execution counts (subsuming branch and
    backedge counters) and per-callsite receiver histograms. Keys are
    stable across IR copying and inlining: methods by id, blocks by
    (method, block id), callsites by their {!Ir.Types.site}. *)

open Ir.Types

type t

val create : unit -> t

(** {1 Recording (used by the interpreter)} *)

val record_invocation : t -> meth_id -> unit
val record_block : t -> meth_id -> bid -> unit
val record_receiver : t -> site -> class_id -> unit
val record_branch : t -> site -> taken:bool -> unit

(** {1 Queries (used by the inliner and cost model)} *)

val invocation_count : t -> meth_id -> int
val block_count : t -> meth_id -> bid -> int

val receiver_count : t -> site -> int
(** Number of distinct receiver classes observed at a site, in O(1) —
    equal to [List.length (receiver_profile t site)] whenever the site has
    been executed. The interpreter uses this on every virtual call. *)

val receiver_profile : t -> site -> (class_id * float) list
(** Receiver histogram as (class, probability), most frequent first;
    probabilities sum to 1. Empty when the site was never executed. *)

val branch_prob : t -> site -> float option
(** Probability the branch was taken; [None] when never executed. *)

val clear : t -> unit

(** {1 Text serialization}

    Deterministic line-based format (see the implementation header). Ids
    are only meaningful against the same prepared program. *)

exception Bad_profile of string

val to_text : t -> string

val of_text : string -> t
(** Duplicate records accumulate, so the concatenation of several dumps
    loads as their merge (summed counts).
    @raise Bad_profile on malformed input or negative counts. *)
