(* Per-call-site polymorphic inline caches (PICs) for virtual dispatch in
   the prepared execution engine — the classic monomorphic → polymorphic →
   megamorphic progression of Smalltalk/Self/HotSpot call sites.

   An IC lives inside one pre-decoded [Pcall] and maps receiver classes to
   resolved targets: a repeat receiver resolves in a linear scan of at
   most [depth] entries (one comparison at a monomorphic site) instead of
   a memoized class-table walk. Past [depth] distinct receivers the site
   goes megamorphic: existing entries keep hitting, new classes keep
   taking the slow path and are counted separately.

   Each entry also carries the profile's receiver-histogram cell for its
   (site, class) pair, so the profiling tier records a cached dispatch's
   receiver with a single increment — bit-identical to the uncached
   [Profile.record_receiver] path. Coherence is managed by the owner of
   the code object: {!Interp} drops (and retires the counters of) every IC
   of a method when its code is installed, replaced or invalidated. *)

open Ir.Types

type entry = {
  e_cls : class_id;
  e_target : meth_id;
  e_count : int ref;
      (* the profile's receiver cell for (site, class); a dummy cell in
         non-profiling tiers *)
}

type t = {
  ic_site : site;
  selector : string;
  mutable entries : entry array;  (* observed classes, oldest first *)
  mutable megamorphic : bool;     (* depth exhausted; entries still hit *)
  mutable hits : int;
  mutable misses : int;
  mutable mega : int;             (* slow-path dispatches while megamorphic *)
}

(* Polymorphic degree before a site goes megamorphic; matches the typical
   PIC depth of production VMs (HotSpot/V8 use 4–8). *)
let depth = 4

let create ~(site : site) ~(selector : string) : t =
  {
    ic_site = site;
    selector;
    entries = [||];
    megamorphic = false;
    hits = 0;
    misses = 0;
    mega = 0;
  }

let probe (t : t) (c : class_id) : entry option =
  let es = t.entries in
  let n = Array.length es in
  let rec go i =
    if i >= n then None
    else
      let e = es.(i) in
      if e.e_cls = c then Some e else go (i + 1)
  in
  go 0

(* Records a failed probe: a miss while the cache is still growing, a
   megamorphic dispatch once the depth is exhausted. Call before {!add}. *)
let note_miss (t : t) : unit =
  if t.megamorphic then t.mega <- t.mega + 1 else t.misses <- t.misses + 1

(* Installs a freshly resolved (class -> target) entry; past [depth] the
   site turns megamorphic and keeps its existing entries. *)
let add (t : t) (e : entry) : unit =
  if Array.length t.entries >= depth then t.megamorphic <- true
  else t.entries <- Array.append t.entries [| e |]

let dispatches (t : t) : int = t.hits + t.misses + t.mega

(* Forgets the cached resolutions (not the counters). *)
let reset (t : t) : unit =
  t.entries <- [||];
  t.megamorphic <- false

(* Zeroes the counters — used after folding them into retired stats so a
   second retirement of the same code object cannot double-count. *)
let reset_stats (t : t) : unit =
  t.hits <- 0;
  t.misses <- 0;
  t.mega <- 0
