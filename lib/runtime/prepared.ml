(* Prepared code objects: the dense, pre-decoded form the execution engine
   actually runs (see docs/ARCHITECTURE.md, "Prepared code & dispatch
   caching").

   The direct interpreter walks the IR's persistent structures on every
   step: a Hashtbl register file, per-execution phi/non-phi partitioning of
   each block's instruction list, List.assoc phi-input resolution, and
   List.nth operand access. Preparation pays all of that once per function:

   - registers become one flat [value array] per frame, indexed by vid;
   - each block's leading phis are split from its body at prepare time,
     with phi inputs resolved per predecessor *edge* (the jump carries a
     precomputed edge index, so phi evaluation is two array reads);
   - instructions are decoded into flat arrays with operand registers,
     static cycle costs, and allocation shapes (field-default templates)
     baked in;
   - call arguments are [int array]s, so frames are built without any
     per-call list traversal.

   Preparation changes *when* work happens, never *what* the program
   observes: output, result, simulated cycles, step counts and recorded
   profiles are identical to the direct interpreter (the differential
   suite in test/test_differential.ml enforces this). The one deliberate
   exception: internal-error paths that only ill-formed (non-verifier-
   clean) SSA can reach — e.g. reading a never-evaluated vid — are not
   reproduced bit-for-bit, because prepared frames have no notion of an
   "unevaluated" register. *)

open Ir.Types
open Values
module Vec = Support.Vec

(* Lazily-bound profile cells. Prepared code carries one holder per
   profiled event site (block entry, branch); the executing engine binds
   the holder to the profile's counter cell on first use and then records
   with a plain increment — no per-event key lookup. Holders belong to
   the code object, so they are dropped with it; [Interp] guards cached
   code by profile identity and generation, which keeps a bound cell from
   outliving the profile it counts into. *)
type cell_holder = { mutable cell : int ref option }
type brec_holder = { mutable brec : Profile.brec option }

(* Pre-decoded instruction payload. Operands are register (= vid) indices
   into the frame. *)
type pop =
  | Pconst of value
  | Pparam of int
  | Punop of unop * int
  | Pbinop of binop * int * int
  | Pcall of { callee : callee; cargs : int array; site : site; ic : Ic.t option }
      (* virtual calls carry a polymorphic inline cache; [None] for
         direct calls *)
  | Pnew of { cls : class_id; defaults : value array }
      (* [defaults] is the field-default template; allocation is an
         [Array.copy] (elements are immutable values, sharing is safe) *)
  | Pgetfield of { obj : int; slot : int; fname : string }
  | Psetfield of { obj : int; slot : int; fname : string; value : int }
  | Pnewarray of { ety : ty; len : int }
  | Parrayget of { arr : int; idx : int }
  | Parrayset of { arr : int; idx : int; value : int }
  | Parraylen of int
  | Ptypetest of { obj : int; cls : class_id }
  | Pintrinsic of intrinsic * int array

type pinstr = {
  dest : int;          (* frame register receiving the result *)
  static_cost : int;   (* cycles charged besides the dispatch penalty *)
  op : pop;
}

(* Terminators carry dense block indices plus the precomputed edge index
   into the target's per-edge phi tables. *)
type pterm =
  | Pgoto of { target : int; edge : int }
  | Pif of {
      cond : int;
      site : site;
      tb : int;
      tedge : int;
      fb : int;
      fedge : int;
      bprof : brec_holder;    (* branch counters, bound on first record *)
    }
  | Preturn of int
  | Punreachable
  | Pdead of bid
      (* jump target was a deleted block: raises the same Invalid_argument
         the direct interpreter's [Fn.block] would, at the same point *)

type pblock = {
  src_bid : bid;               (* original id, for profiles and messages *)
  phi_dests : int array;       (* leading phis, in block order *)
  phi_vids : int array;        (* original vids, for trap messages *)
  phi_srcs : int array array;  (* edge -> phi -> source register, -1 = no input *)
  pred_bids : int array;       (* edge -> predecessor block id *)
  body : pinstr array;         (* non-phi instructions, in order *)
  term : pterm;
  term_cost : int;
  prof : cell_holder;          (* block counter, bound on first record *)
  mutable osr_skip : bool;
      (* the engine's OSR hook answered "never" for this block: stop
         consulting it (headers that can transfer keep [false]) *)
}

type code = {
  fname : string;
  nregs : int;          (* frame size: the function's vid space *)
  entry : int;          (* dense index of the entry block *)
  blocks : pblock array;
  ics : Ic.t array;     (* every inline cache in [blocks], decode order *)
}

let fname (c : code) = c.fname
let num_blocks (c : code) = Array.length c.blocks

(* ---------- translation ---------- *)

let decode_instr ~(cost : Cost.t) ~(ics : Ic.t list ref) (prog : program)
    (i : instr) : pinstr =
  let sc = Cost.instr_cost cost i.kind in
  let op, sc =
    match i.kind with
    | Const (Cint n) -> (Pconst (Vint n), sc)
    | Const (Cbool b) -> (Pconst (Vbool b), sc)
    | Const (Cstring s) -> (Pconst (Vstr s), sc)
    | Const Cunit -> (Pconst Vunit, sc)
    | Const Cnull -> (Pconst Vnull, sc)
    | Param k -> (Pparam k, sc)
    | Unop (op, a) -> (Punop (op, a), sc)
    | Binop (op, a, b) -> (Pbinop (op, a, b), sc)
    | Phi _ -> invalid_arg "Prepared.decode_instr: phi in a block body"
    | Call { callee; args; site; _ } ->
        let ic =
          match callee with
          | Virtual sel ->
              let ic = Ic.create ~site ~selector:sel in
              ics := ic :: !ics;
              Some ic
          | Direct _ -> None
        in
        (Pcall { callee; cargs = Array.of_list args; site; ic }, sc)
    | New c ->
        let layout = (Ir.Program.cls prog c).layout in
        ( Pnew
            { cls = c; defaults = Array.map (fun (_, t) -> default_value t) layout },
          (* the per-field allocation charge is statically known here *)
          sc + Cost.alloc_fields_cost cost (Array.length layout) )
    | GetField { obj; slot; fname; _ } -> (Pgetfield { obj; slot; fname }, sc)
    | SetField { obj; slot; fname; value } ->
        (Psetfield { obj; slot; fname; value }, sc)
    | NewArray { ety; len } -> (Pnewarray { ety; len }, sc)
    | ArrayGet { arr; idx; _ } -> (Parrayget { arr; idx }, sc)
    | ArraySet { arr; idx; value } -> (Parrayset { arr; idx; value }, sc)
    | ArrayLen a -> (Parraylen a, sc)
    | TypeTest { obj; cls } -> (Ptypetest { obj; cls }, sc)
    | Intrinsic (intr, args) -> (Pintrinsic (intr, Array.of_list args), sc)
  in
  { dest = i.id; static_cost = sc; op }

let prepare ~(cost : Cost.t) (prog : program) (fn : fn) : code =
  let ics : Ic.t list ref = ref [] in
  let nslots = Vec.length fn.blocks in
  (* dense indices for live blocks, in id order *)
  let index_of_bid = Array.make (max nslots 1) (-1) in
  let live = ref [] in
  Vec.iteri
    (fun b s -> match s with Some _ -> live := b :: !live | None -> ())
    fn.blocks;
  let live = List.rev !live in
  List.iteri (fun i b -> index_of_bid.(b) <- i) live;
  let nlive = List.length live in
  (* jump targets that are dead or out of range get a stub block that
     faithfully reproduces the direct interpreter's failure (profile tick,
     then Invalid_argument) *)
  let stubs = ref [] in            (* (bid, dense index), appended after live *)
  let nstubs = ref 0 in
  let index_of_target (b : bid) : int =
    if b >= 0 && b < nslots && index_of_bid.(b) >= 0 then index_of_bid.(b)
    else
      match List.assoc_opt b !stubs with
      | Some i -> i
      | None ->
          let i = nlive + !nstubs in
          incr nstubs;
          stubs := (b, i) :: !stubs;
          i
  in
  (* predecessor edges per live block, in (source id, successor slot) order *)
  let preds = Array.make (max nlive 1) [] in
  List.iter
    (fun b ->
      let blk = Ir.Fn.block fn b in
      List.iter
        (fun s ->
          if s >= 0 && s < nslots && index_of_bid.(s) >= 0 then
            preds.(index_of_bid.(s)) <- b :: preds.(index_of_bid.(s)))
        (Ir.Fn.succs_of_term blk.term))
    live;
  let pred_arrays = Array.map (fun l -> Array.of_list (List.rev l)) preds in
  let edge_of ~(target : bid) ~(src : bid) : int =
    if not (target >= 0 && target < nslots && index_of_bid.(target) >= 0) then 0
    else
      let ps = pred_arrays.(index_of_bid.(target)) in
      let rec find i =
        if i >= Array.length ps then 0 (* unreachable: src is a predecessor *)
        else if ps.(i) = src then i
        else find (i + 1)
      in
      find 0
  in
  let decode_block (b : bid) : pblock =
    let blk = Ir.Fn.block fn b in
    (* leading phis, exactly as the direct interpreter's block driver sees
       them (a phi after a non-phi is skipped entirely there, so it is
       dropped here too) *)
    let rec split_phis acc = function
      | v :: rest -> (
          match Ir.Fn.kind fn v with
          | Phi { inputs; _ } -> split_phis ((v, inputs) :: acc) rest
          | _ -> (List.rev acc, v :: rest))
      | [] -> (List.rev acc, [])
    in
    let phis, rest = split_phis [] blk.instrs in
    let non_phis = List.filter (fun v -> not (Ir.Instr.is_phi (Ir.Fn.kind fn v))) rest in
    let my_preds =
      if index_of_bid.(b) >= 0 then pred_arrays.(index_of_bid.(b)) else [||]
    in
    let nphis = List.length phis in
    let phi_dests = Array.make nphis 0 in
    let phi_vids = Array.make nphis 0 in
    List.iteri
      (fun i (v, _) ->
        phi_dests.(i) <- v;
        phi_vids.(i) <- v)
      phis;
    let phi_srcs =
      Array.map
        (fun p ->
          let row = Array.make nphis (-1) in
          List.iteri
            (fun i (_, inputs) ->
              match List.assoc_opt p inputs with
              | Some pv -> row.(i) <- pv
              | None -> ())
            phis;
          row)
        my_preds
    in
    let term, term_cost =
      match blk.term with
      | Goto b' ->
          ( Pgoto { target = index_of_target b'; edge = edge_of ~target:b' ~src:b },
            Cost.term_cost cost blk.term )
      | If { cond; site; tb; fb } ->
          ( Pif
              {
                cond;
                site;
                tb = index_of_target tb;
                tedge = edge_of ~target:tb ~src:b;
                fb = index_of_target fb;
                fedge = edge_of ~target:fb ~src:b;
                bprof = { brec = None };
              },
            Cost.term_cost cost blk.term )
      | Return v -> (Preturn v, Cost.term_cost cost blk.term)
      | Unreachable -> (Punreachable, Cost.term_cost cost blk.term)
    in
    {
      src_bid = b;
      phi_dests;
      phi_vids;
      phi_srcs;
      pred_bids = my_preds;
      body =
        Array.of_list
          (List.map (fun v -> decode_instr ~cost ~ics prog (Ir.Fn.instr fn v)) non_phis);
      term;
      term_cost;
      prof = { cell = None };
      osr_skip = false;
    }
  in
  let live_blocks = List.map decode_block live in
  (* may itself allocate a stub, so resolve before materializing stubs *)
  let entry = index_of_target fn.entry in
  let stub_block (b : bid) : pblock =
    {
      src_bid = b;
      phi_dests = [||];
      phi_vids = [||];
      phi_srcs = [||];
      pred_bids = [||];
      body = [||];
      term = Pdead b;
      term_cost = 0;
      prof = { cell = None };
      osr_skip = false;
    }
  in
  let stub_blocks = List.rev_map (fun (b, _) -> stub_block b) !stubs in
  {
    fname = fn.fname;
    nregs = max (Vec.length fn.instrs) 1;
    entry;
    blocks = Array.of_list (live_blocks @ stub_blocks);
    ics = Array.of_list (List.rev !ics);
  }

(* ---------- profile-guided superinstruction fusion ----------

   The threaded tier lowers each [pinstr] to one handler closure; a
   fusion plan partitions every block body into segments so that hot
   linear runs become a *single* fused handler (composed from the
   constituents' closures — see Interp). Planning is pure bookkeeping
   over the profile: which blocks are hot, where the fusable runs are,
   and which op-sequence patterns were mined. Calls break a run (they
   re-enter the dispatch machinery anyway), everything else fuses. *)

type fusion_config = {
  fuse_invocations : int;
      (* invocations before a method is re-lowered with fusion planned *)
  min_block_count : int;
      (* execution count for a block to enter the mining frontier *)
  max_fused_len : int;  (* cap on constituents per superinstruction *)
}

let default_fusion =
  { fuse_invocations = 32; min_block_count = 16; max_fused_len = 8 }

(* Stable op mnemonic; fused patterns are these joined with ";". *)
let opkey (op : pop) : string =
  match op with
  | Pconst _ -> "const"
  | Pparam _ -> "param"
  | Punop (Neg, _) -> "neg"
  | Punop (Not, _) -> "not"
  | Pbinop (op, _, _) -> (
      match op with
      | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
      | Rem -> "rem" | Shl -> "shl" | Shr -> "shr" | Band -> "band"
      | Bor -> "bor" | Bxor -> "bxor" | Lt -> "lt" | Le -> "le"
      | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"
      | Andb -> "andb" | Orb -> "orb" | Xorb -> "xorb" | Eqb -> "eqb")
  | Pcall _ -> "call"
  | Pnew _ -> "new"
  | Pgetfield _ -> "getfield"
  | Psetfield _ -> "setfield"
  | Pnewarray _ -> "newarray"
  | Parrayget _ -> "arrayget"
  | Parrayset _ -> "arrayset"
  | Parraylen _ -> "arraylen"
  | Ptypetest _ -> "typetest"
  | Pintrinsic _ -> "intrinsic"

(* Calls leave the block's straight line (frame build, tier dispatch,
   possibly recursion into this very code object), so they terminate a
   fusable run. *)
let fusable (op : pop) : bool = match op with Pcall _ -> false | _ -> true

type segment = { seg_start : int; seg_len : int }

type fusion_plan = {
  fp_segments : segment array array;
      (* per dense block index: an in-order partition of the body *)
  fp_patterns : (string * int * int) list;
      (* mined pattern -> (fused sites, weight = summed block hotness),
         sorted by pattern for deterministic reporting *)
}

let singleton_segments (body : pinstr array) : segment array =
  Array.init (Array.length body) (fun i -> { seg_start = i; seg_len = 1 })

(* The unfused plan: every op its own segment, nothing mined. *)
let trivial_plan (c : code) : fusion_plan =
  {
    fp_segments = Array.map (fun b -> singleton_segments b.body) c.blocks;
    fp_patterns = [];
  }

let pattern_of (body : pinstr array) (s : segment) : string =
  String.concat ";"
    (List.init s.seg_len (fun k -> opkey body.(s.seg_start + k).op))

(* Plans fusion for one code object. [hotness] estimates a block's
   execution count (the interpreted tier passes the profile's block
   counter; the compiled tier, which does not profile, treats every
   block as exactly threshold-hot); blocks below [min_block_count] keep
   singleton segments. Hot blocks get their maximal fusable runs chunked
   at [max_fused_len]; every chunk of length >= 2 is a fused site and is
   mined into [fp_patterns]. *)
let plan_fusion (cfg : fusion_config) ~(hotness : pblock -> int) (c : code) :
    fusion_plan =
  let patterns : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let plan_block (b : pblock) : segment array =
    let count = hotness b in
    if count < cfg.min_block_count then singleton_segments b.body
    else begin
      let body = b.body in
      let n = Array.length body in
      let segs = ref [] in
      let i = ref 0 in
      while !i < n do
        if not (fusable body.(!i).op) then begin
          segs := { seg_start = !i; seg_len = 1 } :: !segs;
          incr i
        end
        else begin
          (* maximal fusable run, then chunk it *)
          let j = ref !i in
          while !j < n && fusable body.(!j).op do incr j done;
          let k = ref !i in
          while !k < !j do
            let len = min cfg.max_fused_len (!j - !k) in
            let seg = { seg_start = !k; seg_len = len } in
            if len >= 2 then begin
              let p = pattern_of body seg in
              let sites, weight =
                Option.value ~default:(0, 0) (Hashtbl.find_opt patterns p)
              in
              Hashtbl.replace patterns p (sites + 1, weight + count)
            end;
            segs := seg :: !segs;
            k := !k + len
          done;
          i := !j
        end
      done;
      Array.of_list (List.rev !segs)
    end
  in
  let fp_segments = Array.map plan_block c.blocks in
  {
    fp_segments;
    fp_patterns =
      Hashtbl.fold (fun p (s, w) acc -> (p, s, w) :: acc) patterns []
      |> List.sort compare;
  }
