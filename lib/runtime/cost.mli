(** The deterministic cycle cost model — the substitute for the paper's
    hardware clock. Relative magnitudes encode what the inlining
    literature relies on: calls ≫ arithmetic, virtual > direct dispatch,
    interpretation pays a per-instruction penalty, allocation is expensive.
    See DESIGN.md §1. *)

open Ir.Types

type t = {
  interp_dispatch : int;
  compiled_dispatch : int;
  arith : int;
  mul : int;
  div : int;
  cmp : int;
  const : int;
  phi : int;
  field_access : int;
  array_access : int;
  alloc_base : int;
  alloc_per_field : int;
  type_test : int;
  intrinsic_print : int;
  intrinsic_str : int;
  call_direct : int;
  call_virtual : int;
  call_megamorphic : int;
  branch : int;
  return_ : int;
}

val default : t

val instr_cost : t -> instr_kind -> int
(** Operation cost; call overhead is charged separately by dispatch kind. *)

val term_cost : t -> terminator -> int

val call_overhead : t -> virtual_:bool -> targets:int -> int
(** [targets] is the number of distinct receiver classes observed at the
    site; 3 or more models an inline-cache miss (megamorphic). *)

val alloc_fields_cost : t -> int -> int

val fused_cost : dispatch:int -> int list -> int
(** [fused_cost ~dispatch static_costs] is the total the threaded tier
    charges for a fused superinstruction: the sum over its constituents
    of [dispatch + static cost]. Fusion is cost-transparent — the charged
    total (and every intermediate observable value of the clock) equals
    what the unfused sequence charges. *)
