(* Deterministic cycle cost model — the substitute for the paper's hardware
   clock (see DESIGN.md, Section 1).

   The relative magnitudes encode the facts the inlining literature relies
   on: calls cost far more than arithmetic (frame setup, argument copying,
   branch misprediction on virtual dispatch); interpretation pays a
   dispatch penalty per instruction; allocation is expensive. Inlining
   therefore pays off by (a) deleting call overhead, (b) replacing virtual
   dispatch with direct flow, and (c) letting the optimizer delete
   instructions outright — the same three effects the paper measures. *)

open Ir.Types

type t = {
  interp_dispatch : int;   (* per-instruction interpreter overhead *)
  compiled_dispatch : int; (* per-instruction compiled-code overhead *)
  arith : int;
  mul : int;
  div : int;
  cmp : int;
  const : int;
  phi : int;
  field_access : int;
  array_access : int;      (* includes the bounds check *)
  alloc_base : int;
  alloc_per_field : int;
  type_test : int;
  intrinsic_print : int;
  intrinsic_str : int;
  call_direct : int;       (* frame setup + jump + return *)
  call_virtual : int;      (* + vtable load and indirect branch *)
  call_megamorphic : int;  (* + inline-cache miss *)
  branch : int;
  return_ : int;
}

let default =
  {
    interp_dispatch = 12;
    compiled_dispatch = 0;
    arith = 1;
    mul = 3;
    div = 20;
    cmp = 1;
    const = 0;
    phi = 0;
    field_access = 2;
    array_access = 3;
    alloc_base = 25;
    alloc_per_field = 2;
    type_test = 2;
    intrinsic_print = 30;
    intrinsic_str = 4;
    call_direct = 14;
    call_virtual = 30;
    call_megamorphic = 48;
    branch = 1;
    return_ = 2;
  }

let instr_cost (c : t) (k : instr_kind) : int =
  match k with
  | Const _ -> c.const
  | Param _ -> 0
  | Unop _ -> c.arith
  | Binop (op, _, _) -> (
      match op with
      | Mul -> c.mul
      | Div | Rem -> c.div
      | Add | Sub | Shl | Shr | Band | Bor | Bxor -> c.arith
      | Lt | Le | Gt | Ge | Eq | Ne | Andb | Orb | Xorb | Eqb -> c.cmp)
  | Phi _ -> c.phi
  | Call _ -> 0 (* call overhead charged separately, by dispatch kind *)
  | New cls_ -> ignore cls_; c.alloc_base
  | GetField _ | SetField _ -> c.field_access
  | NewArray _ -> c.alloc_base
  | ArrayGet _ | ArraySet _ | ArrayLen _ -> c.array_access
  | TypeTest _ -> c.type_test
  | Intrinsic (i, _) -> (
      match i with
      | Iprint_int | Iprint_str | Iprint_bool -> c.intrinsic_print
      | Istr_len | Istr_get | Istr_eq -> c.intrinsic_str
      | Iabs | Imin | Imax -> c.arith)

let term_cost (c : t) (t_ : terminator) : int =
  match t_ with
  | Goto _ -> c.branch
  | If _ -> c.branch + c.cmp
  | Return _ -> c.return_
  | Unreachable -> 0

(* Overhead of performing a (non-inlined) call, by how it dispatches.
   [targets] is the number of distinct receivers seen at a virtual site. *)
let call_overhead (c : t) ~(virtual_ : bool) ~(targets : int) : int =
  if not virtual_ then c.call_direct
  else if targets <= 2 then c.call_virtual
  else c.call_megamorphic

let alloc_fields_cost (c : t) n = n * c.alloc_per_field

(* Total cycles a fused superinstruction charges: the sum of its
   constituents' (dispatch + static cost) — fusing never changes the
   charged total, only how many dispatch rounds the host pays for it.
   This is the cost-equivalence invariant the threaded tier's fused
   handlers maintain (each constituent still charges itself, so cycle
   counts agree with the reference at every observable point). *)
let fused_cost ~(dispatch : int) (static_costs : int list) : int =
  List.fold_left (fun acc sc -> acc + dispatch + sc) 0 static_costs
