(** The SelVM execution engine: runs method bodies in either tier and
    doubles as the compiled-code executor. Interpreted frames pay the
    interpreter dispatch penalty and collect profiles; compiled frames pay
    only operation costs and do not profile — the classic two-tier
    contract.

    Two execution backends implement identical observable semantics (see
    docs/ARCHITECTURE.md, "Prepared code & dispatch caching"):

    - [Prepared] (the default): method bodies are translated once into
      dense {!Prepared.code} objects — flat register frames, edge-resolved
      phis, pre-decoded instructions — and cached per (method, tier).
    - [Reference]: the original direct IR walker, kept as the executable
      specification that the differential suite checks the prepared engine
      against.

    Two hooks connect the VM to a JIT engine without a dependency cycle:
    [code] looks up installed compiled code, [on_entry] fires at every
    method entry (hotness detection). *)

open Ir.Types
open Values

type mode = Interpreted | Compiled

type backend = Threaded | Prepared | Reference
(** [Threaded] (the default): subroutine-threaded closures over prepared
    code, with profile-guided superinstruction fusion. [Prepared]: the
    dispatch-match walker over the same pre-decoded form. [Reference]:
    the direct IR walker. All three implement identical observable
    semantics. *)

type osr_transfer = {
  osr_target : meth_id;
      (** the extracted continuation method ({!Ir.Osr}) *)
  osr_live_ins : vid array;
      (** frame mapping, first run: slots whose values become arguments
          [0 .. n-1] *)
  osr_phis : vid array;
      (** frame mapping, second run: the header's loop-carried phi slots,
          read after the phi moves of the transferring iteration *)
}
(** A one-way on-stack-replacement transfer: the backend reads exactly
    the mapped slots, in order, as the target's arguments; the target's
    result is the original activation's result. *)

type osr_verdict = Osr_no | Osr_wait | Osr_enter of osr_transfer
(** Engine's answer when an interpreted frame crosses [osr_threshold] at
    a block: never ask again / ask again later / transfer now. *)

type osr_exit_verdict = Exit_stay | Exit_watch | Exit_to of osr_transfer
(** Engine's answer when a compiled frame sees the deopt epoch move:
    code is current (re-snapshot) / stale but keep probing until a
    header / transfer into an interpreted continuation. *)

type tstate
(** Threaded-tier activation state (frame, arguments, return slot). *)

type thandler = tstate -> unit
(** One handler closure: executes one pre-decoded instruction (or one
    fused superinstruction) and tail-calls the successor handler —
    direct threading, with OCaml's tail-call elimination standing in for
    computed goto. The method-return handler simply returns. *)

type tcode = {
  t_handlers : thandler array;
  t_entry : int;
  t_nregs : int;
  t_fname : string;
  t_stage : int;  (** 0 = lowered cold (no fusion), 1 = fusion planned *)
}
(** A method lowered for the threaded tier: a flat pc-indexed array of
    handler closures (block prologues, body segments, terminators). *)

type prepared_entry = {
  src : fn;
  prof : Profile.t;
  gen : int;
  pcode : Prepared.code;
  mutable tcode : tcode option;
}
(** A cache entry remembers the physical body it was translated from and
    the profile (identity + generation) its baked counter cells point
    into; entries whose [src] is not the current body, or whose profile
    was swapped or cleared, are ignored and replaced. The threaded
    lowering is cached alongside the pcode it was derived from and is
    re-derived when the method crosses the fusion threshold. *)

type ic_stat = {
  st_site : site;
  st_selector : string;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_mega : int;
}
(** Accumulated inline-cache counters of one call site (see {!ic_stats}). *)

type sstat = {
  ss_pattern : string;
  mutable ss_sites : int;   (** fused sites emitted *)
  mutable ss_weight : int;  (** summed hotness of the owning blocks *)
}
(** Accumulated mining results of one superinstruction pattern (see
    {!superinst_stats}). *)

type vm = {
  prog : program;
  mutable profiles : Profile.t;
  cost : Cost.t;
  out : Buffer.t;                          (** captured program output *)
  mutable cycles : int;                    (** the simulated clock *)
  mutable code : meth_id -> fn option;
  mutable on_entry : meth_id -> unit;
  mutable on_spec_miss : meth_id -> site -> unit;
  (** fired when compiled code reaches a typeswitch's residual virtual
      call (a synthetic site): the speculation missed *)
  mutable osr_threshold : int;
  (** block count at which an interpreted frame consults [on_osr] at a
      loop header; [max_int] (the default) disables the checkpoints *)
  mutable on_osr : meth_id -> bid -> osr_verdict;
  mutable osr_headers : meth_id -> fn -> bid -> bool;
  (** lowering-time filter: which blocks of the given body get OSR
      checkpoint guards in the threaded tier (loop headers only) *)
  mutable deopt_epoch : int;
  (** bumped by the engine on every invalidation while OSR is armed;
      compiled frames re-validate at loop headers when it moved *)
  mutable osr_exit_armed : bool;
  (** whether compiled threaded lowerings get OSR-exit guards *)
  mutable on_osr_exit : meth_id -> fn -> bid -> osr_exit_verdict;
  mutable on_osr_abort : meth_id -> unit;
  (** a trap is unwinding out of an entered OSR continuation *)
  mutable steps : int;
  mutable max_steps : int;
  mutable depth : int;
  max_depth : int;
  mutable backend : backend;
  mutable prepared_cache : prepared_entry option array;
  (** prepared code per method and tier, a dense array indexed by
      [meth_id * 2 + tier] — this lookup sits on every invocation *)
  mutable code_epoch : int;
  (** bumped by every {!invalidate_code}; a cheap staleness witness *)
  mutable ic_enabled : bool;
  (** inline caches on prepared virtual dispatch (default [true]);
      disabling is observably transparent — the differential suite
      enforces identical output, cycles, steps and folded profiles *)
  ic_retired : (site, ic_stat) Hashtbl.t;
  (** counters of inline caches retired with their dropped code objects *)
  mutable attrib : Attribution.t option;
  (** per-method cycle attribution ({!enable_attribution}); [None] (the
      default) costs one option check per invocation *)
  mutable fusion : Prepared.fusion_config;
  (** superinstruction thresholds for the threaded tier *)
  superinst : (string, sstat) Hashtbl.t;
  (** mined pattern table, accumulated across threaded lowerings *)
}

val create : ?cost:Cost.t -> ?max_steps:int -> ?backend:backend -> program -> vm
(** [backend] defaults to [Threaded]. *)

val output : vm -> string

val enable_attribution : vm -> Attribution.t
(** Installs (or returns the already-installed) per-method cycle
    attribution: every invocation is then bracketed with enter/leave on
    the simulated clock, split by tier — [Jit] for installed compiled
    code, [Interp]/[Prepared] for the interpreted tier under the
    respective backend. *)

val record_deopt : vm -> meth_id -> unit
(** Counts a deoptimization against the method when attribution is
    enabled; a no-op otherwise. Called by the engine's invalidation
    path. *)

val record_evict : vm -> meth_id -> unit
(** Counts a code-cache eviction against the method when attribution is
    enabled; a no-op otherwise. Called by the engine's bounded-cache
    retirement path — kept separate from {!record_deopt} so reports can
    tell capacity churn from speculation failure. *)

val invalidate_code : vm -> meth_id -> unit
(** Drops any prepared code cached for the method (both tiers) — retiring
    the inline caches it contains into {!ic_stats} — and bumps
    [code_epoch]. {!Jit.Engine} calls this whenever it installs, replaces
    or removes compiled code for a method. *)

val ic_stats : vm -> ic_stat list
(** Per-site inline-cache statistics: live caches merged with retired
    counters, ordered by (method, site ordinal). Sites with zero
    dispatches are omitted. *)

val superinst_stats : vm -> sstat list
(** The mined superinstruction table, sorted by pattern — a
    deterministic function of the program, workload and thresholds.
    Counts accumulate over every threaded lowering, including
    re-lowerings of recompiled or invalidated methods. *)

val invoke : vm -> meth_id -> value array -> value
(** Runs a method through the tier dispatch (compiled body if installed,
    interpreter otherwise).
    @raise Trap on runtime errors. *)

val exec : vm -> mode:mode -> meth:meth_id -> fn -> value array -> value
(** Executes a specific body in a specific tier; used by [invoke] and by
    tests that want to pin the tier. Under the [Prepared] backend the body
    is translated per call (uncached) — cached execution goes through
    [invoke]. *)

val run_main : vm -> value
(** @raise Trap if the program has no main or on runtime errors. *)

val run_meth : vm -> string -> value list -> value
(** Runs a method by qualified name. *)
