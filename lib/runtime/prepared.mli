(** Prepared code objects: a function body pre-decoded, once, into the
    dense array form the execution engine runs — flat [value array]
    register frames indexed by vid, each block's leading phis pre-split
    from its body with inputs resolved per predecessor edge, instructions
    decoded with operand registers and static cycle costs baked in, and
    call arguments as arrays.

    Preparation is observably transparent: output, result, simulated
    cycles, step counts and recorded profiles are identical to direct IR
    interpretation on verifier-clean SSA (enforced by the differential
    suite). Internal-error paths that only ill-formed IR can reach (use of
    a never-evaluated vid) are not reproduced bit-for-bit.

    Prepared code snapshots the function *and* the class layouts its [New]
    instructions allocate, against a fixed cost table. It must be dropped
    when the underlying body is replaced — {!Interp} keys its cache by
    physical identity of the source [fn] and {!Jit.Engine} invalidates on
    every install, so stale code is unreachable. *)

open Ir.Types
open Values

type cell_holder = { mutable cell : int ref option }
(** A lazily-bound profile counter cell: the engine binds it to the
    profile's cell on first record, then records with one increment. *)

type brec_holder = { mutable brec : Profile.brec option }

type pop =
  | Pconst of value
  | Pparam of int
  | Punop of unop * int
  | Pbinop of binop * int * int
  | Pcall of { callee : callee; cargs : int array; site : site; ic : Ic.t option }
      (** virtual calls carry a polymorphic inline cache *)
  | Pnew of { cls : class_id; defaults : value array }
  | Pgetfield of { obj : int; slot : int; fname : string }
  | Psetfield of { obj : int; slot : int; fname : string; value : int }
  | Pnewarray of { ety : ty; len : int }
  | Parrayget of { arr : int; idx : int }
  | Parrayset of { arr : int; idx : int; value : int }
  | Parraylen of int
  | Ptypetest of { obj : int; cls : class_id }
  | Pintrinsic of intrinsic * int array

type pinstr = {
  dest : int;          (** frame register receiving the result *)
  static_cost : int;   (** cycles charged besides the dispatch penalty *)
  op : pop;
}

type pterm =
  | Pgoto of { target : int; edge : int }
  | Pif of {
      cond : int;
      site : site;
      tb : int;
      tedge : int;
      fb : int;
      fedge : int;
      bprof : brec_holder;
    }
  | Preturn of int
  | Punreachable
  | Pdead of bid
      (** the jump target was a deleted block; executing this raises the
          same [Invalid_argument] direct interpretation would *)

type pblock = {
  src_bid : bid;
  phi_dests : int array;
  phi_vids : int array;
  phi_srcs : int array array;  (** edge -> phi -> source register, -1 = none *)
  pred_bids : int array;
  body : pinstr array;
  term : pterm;
  term_cost : int;
  prof : cell_holder;
  mutable osr_skip : bool;
      (** The engine's OSR hook answered "never" for this block; the
          backends stop consulting it. *)
}

type code = {
  fname : string;
  nregs : int;
  entry : int;
  blocks : pblock array;
  ics : Ic.t array;  (** every inline cache in [blocks], decode order *)
}

val fname : code -> string
val num_blocks : code -> int

val prepare : cost:Cost.t -> program -> fn -> code
(** Translates one function. Costs are baked against [cost]; class field
    layouts referenced by [New] are snapshotted from the program. *)

(** {1 Profile-guided superinstruction fusion}

    A fusion plan partitions every block body into segments; the
    threaded tier lowers each segment to one handler closure, so a hot
    linear run of ops becomes a single fused superinstruction. Planning
    never changes observable semantics — fused handlers are composed
    from the constituents' closures and charge the same cycles/steps at
    every observable point (see {!Cost.fused_cost}). *)

type fusion_config = {
  fuse_invocations : int;
      (** invocations before a method is re-lowered with fusion planned *)
  min_block_count : int;
      (** execution count for a block to enter the mining frontier *)
  max_fused_len : int;  (** cap on constituents per superinstruction *)
}

val default_fusion : fusion_config
(** [{ fuse_invocations = 32; min_block_count = 16; max_fused_len = 8 }] *)

val opkey : pop -> string
(** Stable op mnemonic ([add], [arrayget], …); fused patterns are
    constituent mnemonics joined with [";"]. *)

val fusable : pop -> bool
(** Calls break a fusable run; everything else fuses. *)

type segment = { seg_start : int; seg_len : int }

type fusion_plan = {
  fp_segments : segment array array;
      (** per dense block index: an in-order partition of the body *)
  fp_patterns : (string * int * int) list;
      (** mined pattern -> (fused sites, weight = summed block hotness),
          sorted by pattern *)
}

val trivial_plan : code -> fusion_plan
(** Every op its own segment; nothing mined. The stage-0 (cold) plan. *)

val plan_fusion : fusion_config -> hotness:(pblock -> int) -> code -> fusion_plan
(** Mines hot linear sequences: blocks whose [hotness] reaches
    [min_block_count] get their maximal fusable runs chunked at
    [max_fused_len]; every chunk of length >= 2 is a fused site. *)
