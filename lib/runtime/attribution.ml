(* Per-method cycle attribution and a calling-context tree (CCT).

   When enabled (a [t] installed on the VM), every method invocation is
   bracketed by [enter]/[leave] stamped with the simulated cycle clock.
   From those brackets we accrue, per method:

   - self cycles, split by tier (interpreted / prepared / jit) — the
     elapsed cycles of the frame minus the cycles of its callees;
   - total cycles — elapsed cycles while the method is anywhere on the
     stack, counted once per method (a self-recursive method does not
     double-count its own nested activations);
   - invocation counts, split by tier;
   - deoptimization counts (fed by the engine's invalidation path).

   The CCT interns one node per (parent node, method) pair and accrues
   self cycles per node, which is exactly the shape a flamegraph's
   folded-stack lines want: path-from-root plus a weight.

   enter/leave sit on the VM's invocation path, so they are built for
   speed: method records live in an array indexed by method id, context
   nodes are interned by scanning the parent's (short) child list, and
   the only per-call allocations are the frame cons cells on the minor
   heap. No hashing, no closures.

   Everything is driven by the simulated clock and a deterministic stack
   discipline, so reports are byte-identical across runs. The module is
   deliberately free of IR dependencies: methods are plain ids and the
   caller supplies a naming function at render time. *)

type tier = Interp | Prepared | Jit

let tier_index = function Interp -> 0 | Prepared -> 1 | Jit -> 2
let tier_name = function Interp -> "interp" | Prepared -> "prepared" | Jit -> "jit"

type mrec = {
  self : int array;              (* self cycles, indexed by tier *)
  invocations : int array;       (* invocation counts, indexed by tier *)
  mutable total : int;           (* cycles with the method on the stack *)
  mutable deopts : int;
  mutable evicts : int;          (* code-cache evictions (capacity pressure) *)
  (* total-once-per-method bookkeeping for recursive activations *)
  mutable on_stack : int;
  mutable entered_total_at : int;
}

type cct_node = {
  cn_up : cct_node;              (* parent; the virtual root points to itself *)
  cn_meth : int;                 (* -1 on the virtual root *)
  mutable cn_self : int;
  mutable cn_kids : cct_node list;
}

(* The frame stack lives in parallel arrays indexed by depth, so an
   enter/leave pair allocates nothing at all. *)
type t = {
  mutable mrecs : mrec option array;   (* indexed by method id, grown on demand *)
  root : cct_node;
  mutable all_nodes : cct_node list;   (* every interned node, any order *)
  dummy : mrec;                        (* fill for unused stack slots *)
  mutable fs_rec : mrec array;
  mutable fs_tier : int array;
  mutable fs_start : int array;
  mutable fs_children : int array;     (* cycles spent in callees of the frame *)
  mutable fs_node : cct_node array;
  mutable depth : int;
}

let fresh_mrec () : mrec =
  { self = Array.make 3 0; invocations = Array.make 3 0; total = 0; deopts = 0;
    evicts = 0; on_stack = 0; entered_total_at = 0 }

let create () : t =
  let rec root = { cn_up = root; cn_meth = -1; cn_self = 0; cn_kids = [] } in
  let dummy = fresh_mrec () in
  let cap = 256 in
  {
    mrecs = Array.make 64 None;
    root;
    all_nodes = [];
    dummy;
    fs_rec = Array.make cap dummy;
    fs_tier = Array.make cap 0;
    fs_start = Array.make cap 0;
    fs_children = Array.make cap 0;
    fs_node = Array.make cap root;
    depth = 0;
  }

let grow_stack (t : t) : unit =
  let cap = Array.length t.fs_start in
  let next = 2 * cap in
  let extend fill a =
    let b = Array.make next fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.fs_rec <- extend t.dummy t.fs_rec;
  t.fs_tier <- extend 0 t.fs_tier;
  t.fs_start <- extend 0 t.fs_start;
  t.fs_children <- extend 0 t.fs_children;
  t.fs_node <- extend t.root t.fs_node

let mrec_of (t : t) (meth : int) : mrec =
  if meth >= Array.length t.mrecs then begin
    let grown = Array.make (max (meth + 1) (2 * Array.length t.mrecs)) None in
    Array.blit t.mrecs 0 grown 0 (Array.length t.mrecs);
    t.mrecs <- grown
  end;
  match t.mrecs.(meth) with
  | Some r -> r
  | None ->
      let r = fresh_mrec () in
      t.mrecs.(meth) <- Some r;
      r

(* Child lists are short (a method's distinct callees in one context), so
   a linear scan beats hashing an interning key. *)
let node_of (t : t) ~(parent : cct_node) ~(meth : int) : cct_node =
  let rec find = function
    | n :: rest -> if n.cn_meth = meth then n else find rest
    | [] ->
        let n = { cn_up = parent; cn_meth = meth; cn_self = 0; cn_kids = [] } in
        parent.cn_kids <- n :: parent.cn_kids;
        t.all_nodes <- n :: t.all_nodes;
        n
  in
  find parent.cn_kids

let enter (t : t) ~(meth : int) ~(tier : tier) ~(now : int) : unit =
  let r = mrec_of t meth in
  let ti = tier_index tier in
  r.invocations.(ti) <- r.invocations.(ti) + 1;
  if r.on_stack = 0 then r.entered_total_at <- now;
  r.on_stack <- r.on_stack + 1;
  let d = t.depth in
  let parent = if d = 0 then t.root else t.fs_node.(d - 1) in
  let node = node_of t ~parent ~meth in
  if d = Array.length t.fs_start then grow_stack t;
  t.fs_rec.(d) <- r;
  t.fs_tier.(d) <- ti;
  t.fs_start.(d) <- now;
  t.fs_children.(d) <- 0;
  t.fs_node.(d) <- node;
  t.depth <- d + 1

let leave (t : t) ~(now : int) : unit =
  if t.depth = 0 then ()         (* imbalanced (shouldn't happen); ignore *)
  else begin
    let d = t.depth - 1 in
    t.depth <- d;
    let r = t.fs_rec.(d) in
    let elapsed = now - t.fs_start.(d) in
    let self = elapsed - t.fs_children.(d) in
    let ti = t.fs_tier.(d) in
    r.self.(ti) <- r.self.(ti) + self;
    let n = t.fs_node.(d) in
    n.cn_self <- n.cn_self + self;
    r.on_stack <- r.on_stack - 1;
    if r.on_stack = 0 then r.total <- r.total + (now - r.entered_total_at);
    t.fs_rec.(d) <- t.dummy;     (* don't pin the record past the frame *)
    if d > 0 then t.fs_children.(d - 1) <- t.fs_children.(d - 1) + elapsed
  end

let record_deopt (t : t) (meth : int) : unit =
  let r = mrec_of t meth in
  r.deopts <- r.deopts + 1

let record_evict (t : t) (meth : int) : unit =
  let r = mrec_of t meth in
  r.evicts <- r.evicts + 1

(* ---------- reporting ---------- *)

type row = {
  r_meth : int;
  r_self : int;                  (* across tiers *)
  r_total : int;
  r_invocations : int;           (* across tiers *)
  r_self_by_tier : int * int * int;
  r_invocations_by_tier : int * int * int;
  r_deopts : int;
  r_evicts : int;
}

let rows (t : t) : row list =
  let acc = ref [] in
  Array.iteri
    (fun meth -> function
      | None -> ()
      | Some (r : mrec) ->
          acc :=
            {
              r_meth = meth;
              r_self = r.self.(0) + r.self.(1) + r.self.(2);
              r_total = r.total;
              r_invocations = r.invocations.(0) + r.invocations.(1) + r.invocations.(2);
              r_self_by_tier = (r.self.(0), r.self.(1), r.self.(2));
              r_invocations_by_tier =
                (r.invocations.(0), r.invocations.(1), r.invocations.(2));
              r_deopts = r.deopts;
              r_evicts = r.evicts;
            }
            :: !acc)
    t.mrecs;
  List.sort
    (fun a b ->
      match compare b.r_self a.r_self with 0 -> compare a.r_meth b.r_meth | c -> c)
    !acc

let folded (t : t) ~(name : int -> string) : string list =
  let path_of (n : cct_node) : string =
    let rec go (n : cct_node) acc =
      let acc = name n.cn_meth :: acc in
      if n.cn_up.cn_meth < 0 then acc else go n.cn_up acc
    in
    String.concat ";" (go n [])
  in
  List.filter_map
    (fun (n : cct_node) ->
      if n.cn_self > 0 then Some (Printf.sprintf "%s %d" (path_of n) n.cn_self)
      else None)
    t.all_nodes
  |> List.sort compare
