(* Runtime profiles, the moral equivalent of the HotSpot profiling data the
   paper's inliner consumes: invocation counters, per-block execution
   counts (subsuming branch probabilities and loop backedge counters), and
   per-callsite receiver type histograms.

   Everything is keyed by stable ids: methods by [meth_id], blocks by
   (meth, bid) — block ids are preserved by IR copying — and callsites by
   their [site] key, which survives inlining.

   Storage is slot-indexed: method ids, block ids and site ordinals are
   all dense (the lowering allocates them consecutively), so counters live
   in option arrays indexed directly by id instead of the tuple-keyed
   hashtables of the seed implementation. Recording is an array read plus
   an increment — no per-event key allocation, no hashing. The counter
   cells themselves ([int ref] / {!brec} / {!rsite}) have stable identity
   and are handed out to callers, which lets the prepared execution engine
   bake them into pre-decoded code and its inline caches: a baked-cell
   increment and a [record_*] call are indistinguishable in the folded
   profile. Synthetic sites (negative [sidx], typeswitch fallbacks) cannot
   index an array and fall back to keyed tables; they are rare and only
   reachable from compiled code, which does not profile. *)

open Ir.Types

(* Receiver histogram of one call site. Class cells are handed out so the
   inline-cache fast path can record a receiver with one increment. *)
type rsite = { hist : (class_id, int ref) Hashtbl.t }

(* Taken/not-taken counters of one branch site, bindable as a unit. *)
type brec = { mutable taken : int; mutable not_taken : int }

(* Everything recorded against one method, slot-indexed. *)
type mprof = {
  mutable blocks : int ref option array;  (* by bid *)
  mutable branches : brec option array;   (* by sidx *)
  mutable rsites : rsite option array;    (* by sidx *)
}

type t = {
  mutable invocations : int ref option array;  (* by meth_id *)
  mutable mprofs : mprof option array;         (* by meth_id *)
  synth_branches : (meth_id * int, brec) Hashtbl.t;
  synth_rsites : (meth_id * int, rsite) Hashtbl.t;
  mutable generation : int;
}

let create () =
  {
    invocations = [||];
    mprofs = [||];
    synth_branches = Hashtbl.create 8;
    synth_rsites = Hashtbl.create 8;
    generation = 0;
  }

let generation t = t.generation

(* Returns [arr] grown (amortized doubling) so index [i] is valid. *)
let grown : 'a. 'a option array -> int -> 'a option array =
 fun arr i ->
  if i < Array.length arr then arr
  else begin
    let n = max 8 (max (i + 1) (2 * Array.length arr)) in
    let a = Array.make n None in
    Array.blit arr 0 a 0 (Array.length arr);
    a
  end

let mprof_for (t : t) (m : meth_id) : mprof =
  t.mprofs <- grown t.mprofs m;
  match t.mprofs.(m) with
  | Some mp -> mp
  | None ->
      let mp = { blocks = [||]; branches = [||]; rsites = [||] } in
      t.mprofs.(m) <- Some mp;
      mp

(* ---------- counter cells (find-or-create; stable identity) ---------- *)

let invocation_cell (t : t) (m : meth_id) : int ref =
  t.invocations <- grown t.invocations m;
  match t.invocations.(m) with
  | Some c -> c
  | None ->
      let c = ref 0 in
      t.invocations.(m) <- Some c;
      c

let block_cell (t : t) (m : meth_id) (b : bid) : int ref =
  let mp = mprof_for t m in
  mp.blocks <- grown mp.blocks b;
  match mp.blocks.(b) with
  | Some c -> c
  | None ->
      let c = ref 0 in
      mp.blocks.(b) <- Some c;
      c

let branch_cell (t : t) (site : site) : brec =
  if site.sidx < 0 then begin
    let key = (site.sm, site.sidx) in
    match Hashtbl.find_opt t.synth_branches key with
    | Some br -> br
    | None ->
        let br = { taken = 0; not_taken = 0 } in
        Hashtbl.replace t.synth_branches key br;
        br
  end
  else begin
    let mp = mprof_for t site.sm in
    mp.branches <- grown mp.branches site.sidx;
    match mp.branches.(site.sidx) with
    | Some br -> br
    | None ->
        let br = { taken = 0; not_taken = 0 } in
        mp.branches.(site.sidx) <- Some br;
        br
  end

let brec_record (br : brec) ~(taken : bool) : unit =
  if taken then br.taken <- br.taken + 1 else br.not_taken <- br.not_taken + 1

let receiver_site (t : t) (site : site) : rsite =
  if site.sidx < 0 then begin
    let key = (site.sm, site.sidx) in
    match Hashtbl.find_opt t.synth_rsites key with
    | Some rs -> rs
    | None ->
        let rs = { hist = Hashtbl.create 4 } in
        Hashtbl.replace t.synth_rsites key rs;
        rs
  end
  else begin
    let mp = mprof_for t site.sm in
    mp.rsites <- grown mp.rsites site.sidx;
    match mp.rsites.(site.sidx) with
    | Some rs -> rs
    | None ->
        let rs = { hist = Hashtbl.create 4 } in
        mp.rsites.(site.sidx) <- Some rs;
        rs
  end

let find_receiver_site (t : t) (site : site) : rsite option =
  if site.sidx < 0 then Hashtbl.find_opt t.synth_rsites (site.sm, site.sidx)
  else if site.sm >= 0 && site.sm < Array.length t.mprofs then
    match t.mprofs.(site.sm) with
    | Some mp when site.sidx < Array.length mp.rsites -> mp.rsites.(site.sidx)
    | _ -> None
  else None

let rsite_cell (rs : rsite) (c : class_id) : int ref =
  match Hashtbl.find_opt rs.hist c with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace rs.hist c r;
      r

let find_rsite_cell (rs : rsite) (c : class_id) : int ref option =
  Hashtbl.find_opt rs.hist c

let rsite_distinct (rs : rsite) : int = Hashtbl.length rs.hist

(* ---------- recording ---------- *)

let record_invocation t m = incr (invocation_cell t m)
let record_block t m b = incr (block_cell t m b)
let record_receiver t (site : site) (c : class_id) =
  incr (rsite_cell (receiver_site t site) c)
let record_branch t (site : site) ~(taken : bool) =
  brec_record (branch_cell t site) ~taken

(* ---------- queries ---------- *)

let invocation_count t m =
  if m >= 0 && m < Array.length t.invocations then
    match t.invocations.(m) with Some c -> !c | None -> 0
  else 0

let block_count t m b =
  if m >= 0 && m < Array.length t.mprofs then
    match t.mprofs.(m) with
    | Some mp when b >= 0 && b < Array.length mp.blocks -> (
        match mp.blocks.(b) with Some c -> !c | None -> 0)
    | _ -> 0
  else 0

(* The mining frontier for superinstruction fusion: every block of the
   method whose execution count has reached [threshold], with its count,
   in block-id order. One pass over the method's dense block slots. *)
let hot_blocks t m ~(threshold : int) : (bid * int) list =
  if m >= 0 && m < Array.length t.mprofs then
    match t.mprofs.(m) with
    | Some mp ->
        let acc = ref [] in
        for b = Array.length mp.blocks - 1 downto 0 do
          match mp.blocks.(b) with
          | Some c when !c >= threshold -> acc := (b, !c) :: !acc
          | _ -> ()
        done;
        !acc
    | None -> []
  else []

(* The hottest block count of a method: the loop-hotness signal the engine
   folds into its compile trigger (a method whose invocation counter never
   moves can still be hot through its backedges). One pass over the dense
   block slots, like [hot_blocks]. *)
let max_block_count t m : int =
  if m >= 0 && m < Array.length t.mprofs then
    match t.mprofs.(m) with
    | Some mp ->
        let best = ref 0 in
        for b = 0 to Array.length mp.blocks - 1 do
          match mp.blocks.(b) with
          | Some c when !c > !best -> best := !c
          | _ -> ()
        done;
        !best
    | None -> 0
  else 0

let find_branch (t : t) (site : site) : brec option =
  if site.sidx < 0 then Hashtbl.find_opt t.synth_branches (site.sm, site.sidx)
  else if site.sm >= 0 && site.sm < Array.length t.mprofs then
    match t.mprofs.(site.sm) with
    | Some mp when site.sidx < Array.length mp.branches ->
        mp.branches.(site.sidx)
    | _ -> None
  else None

(* Number of distinct receiver classes observed at a site: O(1), used by
   the interpreter's virtual-call overhead accounting on every call (the
   full histogram would be rebuilt and sorted per query). *)
let receiver_count t (site : site) : int =
  match find_receiver_site t site with
  | None -> 0
  | Some rs -> Hashtbl.length rs.hist

(* Receiver histogram as (class, probability), most frequent first. *)
let receiver_profile t (site : site) : (class_id * float) list =
  match find_receiver_site t site with
  | None -> []
  | Some rs ->
      let total = Hashtbl.fold (fun _ r acc -> acc + !r) rs.hist 0 in
      if total = 0 then []
      else
        Hashtbl.fold
          (fun c r acc -> (c, float_of_int !r /. float_of_int total) :: acc)
          rs.hist []
        |> List.sort (fun (_, a) (_, b) -> compare b a)

let branch_prob t (site : site) : float option =
  match find_branch t site with
  | None -> None
  | Some br ->
      let total = br.taken + br.not_taken in
      if total = 0 then None
      else Some (float_of_int br.taken /. float_of_int total)

(* [clear] advances the generation: cells handed out before the bump no
   longer belong to this profile, and holders of baked cells (the prepared
   engine) must rebind. *)
let clear t =
  t.invocations <- [||];
  t.mprofs <- [||];
  Hashtbl.reset t.synth_branches;
  Hashtbl.reset t.synth_rsites;
  t.generation <- t.generation + 1

(* ---------- text serialization ----------

   One record per line, sorted for determinism:
     i <meth> <count>                  invocation counter
     b <meth> <bid> <count>            block execution count
     r <meth> <sidx> <class> <count>   receiver histogram entry
     c <meth> <sidx> <taken> <nottaken>  branch counts

   Ids are only meaningful against the same prepared program (same
   sources); loaders of foreign profiles get whatever the ids say. *)

let to_text (t : t) : string =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun l -> lines := l :: !lines) fmt in
  Array.iteri
    (fun m c -> match c with Some c -> add "i %d %d" m !c | None -> ())
    t.invocations;
  Array.iteri
    (fun m mp ->
      match mp with
      | None -> ()
      | Some mp ->
          Array.iteri
            (fun b c -> match c with Some c -> add "b %d %d %d" m b !c | None -> ())
            mp.blocks;
          Array.iteri
            (fun s br ->
              match br with
              | Some br -> add "c %d %d %d %d" m s br.taken br.not_taken
              | None -> ())
            mp.branches;
          Array.iteri
            (fun s rs ->
              match rs with
              | Some rs -> Hashtbl.iter (fun c r -> add "r %d %d %d %d" m s c !r) rs.hist
              | None -> ())
            mp.rsites)
    t.mprofs;
  Hashtbl.iter
    (fun (m, s) (br : brec) -> add "c %d %d %d %d" m s br.taken br.not_taken)
    t.synth_branches;
  Hashtbl.iter
    (fun (m, s) (rs : rsite) ->
      Hashtbl.iter (fun c r -> add "r %d %d %d %d" m s c !r) rs.hist)
    t.synth_rsites;
  let buf = Buffer.create 1024 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.sort compare !lines);
  Buffer.contents buf

exception Bad_profile of string

(* Duplicate records *accumulate*: a profile dump produced by
   concatenating several runs' dumps (merged profiles) must load as the
   sum of its parts, not as whichever record happened to come last.
   Negative counts can express no observation and are rejected. *)
let of_text (text : string) : t =
  let t = create () in
  let bad lineno line =
    raise (Bad_profile (Printf.sprintf "line %d: %S" (lineno + 1) line))
  in
  let ints line =
    match String.split_on_char ' ' (String.trim line) with
    | kind :: rest -> (kind, List.map int_of_string rest)
    | [] -> raise (Bad_profile "empty record")
  in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         if String.trim line <> "" then
           match ints line with
           | (_, counts) when List.exists (fun n -> n < 0) counts ->
               bad lineno line
           | "i", [ m; count ] ->
               let c = invocation_cell t m in
               c := !c + count
           | "b", [ m; b; count ] ->
               let c = block_cell t m b in
               c := !c + count
           | "r", [ m; s; c; count ] ->
               let cell = rsite_cell (receiver_site t { sm = m; sidx = s }) c in
               cell := !cell + count
           | "c", [ m; s; tk; ntk ] ->
               let br = branch_cell t { sm = m; sidx = s } in
               br.taken <- br.taken + tk;
               br.not_taken <- br.not_taken + ntk
           | _ -> bad lineno line
           | exception _ -> bad lineno line)
  |> fun () -> t
