(* Runtime profiles, the moral equivalent of the HotSpot profiling data the
   paper's inliner consumes: invocation counters, per-block execution
   counts (subsuming branch probabilities and loop backedge counters), and
   per-callsite receiver type histograms.

   Everything is keyed by stable ids: methods by [meth_id], blocks by
   (meth, bid) — block ids are preserved by IR copying — and callsites by
   their [site] key, which survives inlining. *)

open Ir.Types

type t = {
  invocations : (meth_id, int ref) Hashtbl.t;
  blocks : (meth_id * bid, int ref) Hashtbl.t;
  receivers : (meth_id * int, (class_id, int ref) Hashtbl.t) Hashtbl.t;
  branches : (meth_id * int, int ref * int ref) Hashtbl.t;  (* taken, not-taken *)
}

let create () =
  {
    invocations = Hashtbl.create 64;
    blocks = Hashtbl.create 256;
    receivers = Hashtbl.create 64;
    branches = Hashtbl.create 128;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let record_invocation t m = bump t.invocations m

let record_block t m b = bump t.blocks (m, b)

let record_receiver t (site : site) (c : class_id) =
  let key = (site.sm, site.sidx) in
  let hist =
    match Hashtbl.find_opt t.receivers key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.receivers key h;
        h
  in
  bump hist c

let record_branch t (site : site) ~(taken : bool) =
  let key = (site.sm, site.sidx) in
  let taken_r, not_taken_r =
    match Hashtbl.find_opt t.branches key with
    | Some p -> p
    | None ->
        let p = (ref 0, ref 0) in
        Hashtbl.replace t.branches key p;
        p
  in
  if taken then incr taken_r else incr not_taken_r

let invocation_count t m =
  match Hashtbl.find_opt t.invocations m with Some r -> !r | None -> 0

let block_count t m b =
  match Hashtbl.find_opt t.blocks (m, b) with Some r -> !r | None -> 0

(* Number of distinct receiver classes observed at a site: O(1), used by
   the interpreter's virtual-call overhead accounting on every call (the
   full histogram would be rebuilt and sorted per query). *)
let receiver_count t (site : site) : int =
  match Hashtbl.find_opt t.receivers (site.sm, site.sidx) with
  | None -> 0
  | Some h -> Hashtbl.length h

(* Receiver histogram as (class, probability), most frequent first. *)
let receiver_profile t (site : site) : (class_id * float) list =
  match Hashtbl.find_opt t.receivers (site.sm, site.sidx) with
  | None -> []
  | Some h ->
      let total = Hashtbl.fold (fun _ r acc -> acc + !r) h 0 in
      if total = 0 then []
      else
        Hashtbl.fold (fun c r acc -> (c, float_of_int !r /. float_of_int total) :: acc) h []
        |> List.sort (fun (_, a) (_, b) -> compare b a)

let branch_prob t (site : site) : float option =
  match Hashtbl.find_opt t.branches (site.sm, site.sidx) with
  | None -> None
  | Some (tk, ntk) ->
      let total = !tk + !ntk in
      if total = 0 then None else Some (float_of_int !tk /. float_of_int total)

let clear t =
  Hashtbl.reset t.invocations;
  Hashtbl.reset t.blocks;
  Hashtbl.reset t.receivers;
  Hashtbl.reset t.branches

(* ---------- text serialization ----------

   One record per line, sorted for determinism:
     i <meth> <count>                  invocation counter
     b <meth> <bid> <count>            block execution count
     r <meth> <sidx> <class> <count>   receiver histogram entry
     c <meth> <sidx> <taken> <nottaken>  branch counts

   Ids are only meaningful against the same prepared program (same
   sources); loaders of foreign profiles get whatever the ids say. *)

let to_text (t : t) : string =
  let buf = Buffer.create 1024 in
  let lines = ref [] in
  Hashtbl.iter
    (fun m r -> lines := Printf.sprintf "i %d %d" m !r :: !lines)
    t.invocations;
  Hashtbl.iter
    (fun (m, b) r -> lines := Printf.sprintf "b %d %d %d" m b !r :: !lines)
    t.blocks;
  Hashtbl.iter
    (fun (m, s) hist ->
      Hashtbl.iter
        (fun c r -> lines := Printf.sprintf "r %d %d %d %d" m s c !r :: !lines)
        hist)
    t.receivers;
  Hashtbl.iter
    (fun (m, s) (tk, ntk) -> lines := Printf.sprintf "c %d %d %d %d" m s !tk !ntk :: !lines)
    t.branches;
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.sort compare !lines);
  Buffer.contents buf

exception Bad_profile of string

(* Duplicate records *accumulate*: a profile dump produced by
   concatenating several runs' dumps (merged profiles) must load as the
   sum of its parts, not as whichever record happened to come last.
   Negative counts can express no observation and are rejected. *)
let of_text (text : string) : t =
  let t = create () in
  let bad lineno line =
    raise (Bad_profile (Printf.sprintf "line %d: %S" (lineno + 1) line))
  in
  let ints line =
    match String.split_on_char ' ' (String.trim line) with
    | kind :: rest -> (kind, List.map int_of_string rest)
    | [] -> raise (Bad_profile "empty record")
  in
  let accumulate tbl key count =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := !r + count
    | None -> Hashtbl.replace tbl key (ref count)
  in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         if String.trim line <> "" then
           match ints line with
           | (_, counts) when List.exists (fun n -> n < 0) counts ->
               bad lineno line
           | "i", [ m; count ] -> accumulate t.invocations m count
           | "b", [ m; b; count ] -> accumulate t.blocks (m, b) count
           | "r", [ m; s; c; count ] ->
               let hist =
                 match Hashtbl.find_opt t.receivers (m, s) with
                 | Some h -> h
                 | None ->
                     let h = Hashtbl.create 4 in
                     Hashtbl.replace t.receivers (m, s) h;
                     h
               in
               accumulate hist c count
           | "c", [ m; s; tk; ntk ] -> (
               match Hashtbl.find_opt t.branches (m, s) with
               | Some (tk_r, ntk_r) ->
                   tk_r := !tk_r + tk;
                   ntk_r := !ntk_r + ntk
               | None -> Hashtbl.replace t.branches (m, s) (ref tk, ref ntk))
           | _ -> bad lineno line
           | exception _ -> bad lineno line)
  |> fun () -> t
