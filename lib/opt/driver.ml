(* Pass orchestration.

   [simplify] is the canonicalization fixpoint used everywhere: by the
   baseline preparation of freshly lowered methods (Graal's parse-time
   canonicalization), by deep inlining trials on specialized callee copies
   (where its event count is the paper's N_s), and on the root method
   between inlining rounds. [round_root_opts] additionally runs read-write
   elimination and first-iteration peeling, which the paper applies to the
   root at the end of every round. *)

open Ir.Types

type stats = {
  canon : Canonicalize.stats;
  mutable gvn_hits : int;
  mutable dce_removed : int;
  mutable rw_eliminated : int;
  mutable loops_peeled : int;
  mutable scalar_replaced : int;
  mutable licm_hoisted : int;
}

let empty_stats () =
  {
    canon = Canonicalize.empty_stats ();
    gvn_hits = 0;
    dce_removed = 0;
    rw_eliminated = 0;
    loops_peeled = 0;
    scalar_replaced = 0;
    licm_hoisted = 0;
  }

(* The paper's "simple optimizations" count: canonicalization events plus
   value-numbering hits (Section IV lists global value numbering among
   them). Code-removal bookkeeping (DCE) is not itself an optimization
   event. *)
let simple_opt_count (s : stats) = Canonicalize.total s.canon + s.gvn_hits

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%a gvn=%d dce=%d rw=%d peel=%d scalar=%d licm=%d" Canonicalize.pp_stats
    s.canon s.gvn_hits s.dce_removed s.rw_eliminated s.loops_peeled s.scalar_replaced
    s.licm_hoisted

(* Canonicalize + GVN + DCE + CFG cleanup to a fixpoint (bounded). *)
let simplify ?(max_rounds = 10) (prog : program) (fn : fn) : stats =
  let stats = empty_stats () in
  let rec go round =
    if round < max_rounds then begin
      (* watchdog checkpoint: a fixpoint round is the unit of work; the
         fn is always structurally consistent here *)
      Support.Fuel.spend 1;
      let changed = ref false in
      let cstats = Canonicalize.empty_stats () in
      if Canonicalize.run_once prog fn cstats then changed := true;
      Canonicalize.add_into ~into:stats.canon cstats;
      let g = Gvn.run fn in
      stats.gvn_hits <- stats.gvn_hits + g;
      if g > 0 then changed := true;
      let d = Dce.run fn in
      stats.dce_removed <- stats.dce_removed + d;
      if d > 0 then changed := true;
      if Simplify.cleanup fn then changed := true;
      if !changed then go (round + 1)
    end
  in
  go 0;
  stats

(* Root-method optimizations at the end of an inlining round: simplify,
   then read-write elimination, scalar replacement of allocations whose
   constructors were just inlined, loop-invariant hoisting and profitable
   first-iteration peeling, then simplify again to exploit what they
   exposed. The flags exist for the ablation bench (`opts-ablation`). *)
let round_root_opts ?(rwelim = true) ?(scalar = true) ?(licm = true) ?(peel = true)
    (prog : program) (fn : fn) : stats =
  let stats = simplify prog fn in
  (* watchdog checkpoint between the simplify fixpoint and the heavier
     root passes; each pass below is atomic *)
  Support.Fuel.spend 1;
  let rw = if rwelim then Rwelim.run prog fn else 0 in
  stats.rw_eliminated <- stats.rw_eliminated + rw;
  let scalar = if scalar then Scalarrepl.run prog fn else 0 in
  stats.scalar_replaced <- stats.scalar_replaced + scalar;
  let hoisted = if licm then Licm.run fn else 0 in
  stats.licm_hoisted <- stats.licm_hoisted + hoisted;
  let peeled = if peel then Peel.run prog fn else 0 in
  stats.loops_peeled <- stats.loops_peeled + peeled;
  if rw > 0 || scalar > 0 || hoisted > 0 || peeled > 0 then begin
    let s2 = simplify prog fn in
    Canonicalize.add_into ~into:stats.canon s2.canon;
    stats.gvn_hits <- stats.gvn_hits + s2.gvn_hits;
    stats.dce_removed <- stats.dce_removed + s2.dce_removed
  end;
  Obs.Trace.emit "opt_round" (fun () ->
      Support.Json.
        [
          ("fn", String fn.fname);
          ("canon", Int (Canonicalize.total stats.canon));
          ("gvn", Int stats.gvn_hits);
          ("dce", Int stats.dce_removed);
          ("rwelim", Int stats.rw_eliminated);
          ("scalar", Int stats.scalar_replaced);
          ("licm", Int stats.licm_hoisted);
          ("peel", Int stats.loops_peeled);
          ("size", Int (Ir.Fn.size fn));
        ]);
  stats

(* Baseline preparation of every method body right after lowering, before
   any profiling: equivalent to parse-time canonicalization. Profiles are
   then collected against the prepared IR, so block ids referenced by
   profiles match the IR every later consumer sees. *)
let prepare_program (prog : program) : unit =
  Ir.Program.iter_meths
    (fun (m : meth) ->
      match m.body with
      | Some fn ->
          ignore (simplify prog fn);
          (* hoist loop invariants once at parse time too, so interpreted
             code and every later IR copy profit; block ids referenced by
             profiles are the post-prepare ones, so this must happen before
             any interpretation *)
          if Licm.run fn > 0 then ignore (simplify prog fn)
      | None -> ())
    prog
