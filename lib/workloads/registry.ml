(* The workload registry: every benchmark program the harness and the test
   suite iterate over. See DESIGN.md for the mapping from each workload to
   the paper benchmark whose *shape* it reproduces. *)

let all : Defs.t list =
  [
    Foreach_poly.workload;
    Actors_msg.workload;
    Scalac_visitor.workload;
    Kiama_rewriter.workload;
    Stm_bench.workload;
    Factorie_gm.workload;
    Dotty_subtype.workload;
    Neo4j_query.workload;
    Jython_loop.workload;
    Luindex_text.workload;
    Sunflow_vec.workload;
    Avrora_events.workload;
    Dec_tree.workload;
    Gauss_mix.workload;
    Naive_bayes.workload;
    Blas_modes.workload;
    H2_sql.workload;
    Apparat_bc.workload;
    Specs_test.workload;
    Lusearch_q.workload;
    Xalan_xform.workload;
    Pmd_rules.workload;
    Tmt_topic.workload;
    Scalap_decode.workload;
    Scalariform_fmt.workload;
    Long_loop.workload;
    Nested_loop.workload;
  ]

let find (name : string) : Defs.t option =
  List.find_opt (fun (w : Defs.t) -> w.name = name) all

let names () = List.map (fun (w : Defs.t) -> w.name) all

(* Compiles a workload to a fresh IR program (each engine wants its own
   program value: profiles and code caches are engine-local, but prepared
   bodies are shared within one program). *)
let compile (w : Defs.t) : Ir.Types.program =
  match Frontend.Pipeline.compile w.source with
  | Ok prog -> prog
  | Error e ->
      invalid_arg
        (Printf.sprintf "workload %s does not compile: %s" w.name
           (Frontend.Pipeline.error_to_string e))
