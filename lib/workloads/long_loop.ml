(* The long-running-loop blind spot in miniature: one giant invocation of
   [bench] spins a ~20k-iteration loop with a hot call inside it. Under
   invocation-counted hotness alone the method never recompiles while it
   runs — only loop-entry OSR (or the backedge-driven entry trigger, for
   the second iteration) gets compiled code under this loop. [iters] is
   deliberately tiny: the interesting part is inside one invocation. *)

let workload : Defs.t =
  {
    name = "long-loop";
    description = "single giant invocation: 20k-iteration loop, hot call inside";
    flavor = Java;
    iters = 2;
    expected = "63159090\n";
    source =
      {|
def step(acc: Int, i: Int): Int = {
  val t = acc + i * 3 + (acc % 7);
  if (t > 536870911) { t - 536870909 } else { t }
}

def bench(): Int = {
  var acc = 1;
  var i = 0;
  while (i < 20000) {
    acc = step(acc, i);
    i = i + 1;
  }
  acc
}

def main(): Unit = println(bench())
|};
  }
