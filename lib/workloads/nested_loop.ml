(* Nested long-running loops in one invocation: a 150x150 grid sweep with
   a bimorphic call in the inner body. The outer loop's header is hot
   enough for OSR long before the invocation returns; the extracted
   continuation contains the inner loop intact, so the incremental
   inliner sees the real nesting when it compiles the continuation. *)

let workload : Defs.t =
  {
    name = "nested-loop";
    description = "150x150 nested loops, bimorphic call in the inner body";
    flavor = Java;
    iters = 4;
    expected = "45000\n";
    source =
      {|
abstract class Cell {
  def weight(x: Int): Int
}
class Light(w: Int) extends Cell {
  def weight(x: Int): Int = w * x + 1
}
class Heavy(w: Int) extends Cell {
  def weight(x: Int): Int = w * x + x + 3
}

def bench(): Int = {
  val a = new Light(3);
  val b = new Heavy(5);
  var acc = 0;
  var i = 0;
  while (i < 150) {
    var j = 0;
    while (j < 150) {
      val c = if (((i + j) % 2) == 0) { a } else { b };
      acc = acc + c.weight(i - j);
      if (acc > 536870911) { acc = acc % 1000003 };
      j = j + 1;
    }
    i = i + 1;
  }
  acc
}

def main(): Unit = println(bench())
|};
  }
