(** Loop extraction for on-stack replacement.

    Outlines the continuation of a function at a loop header into a
    standalone function (Mosaner-style loop extraction): the extracted body
    contains every block reachable from the header — remaining loop
    iterations and the post-loop tail — and returns the original function's
    result, so a transfer into it is one-way. *)

open Types

type extraction = {
  x_fn : fn;
      (** The extracted continuation. Parameters are the live-ins followed
          by the header's loop-carried phis; [fname] and the result type
          are inherited from the source function. *)
  x_live_ins : vid array;
      (** Frame mapping for parameters [0 .. n-1]: source-function vids
          (ascending) whose slots hold each live-in at the header. *)
  x_phis : vid array;
      (** Frame mapping for parameters [n ..]: the header phi vids, in
          block order; their slots hold the current loop-carried values
          once the header's phis have been evaluated. *)
}

exception Not_extractable of string

val extract_loop : fn -> header:bid -> extraction
(** [extract_loop fn ~header] extracts the continuation of [fn] at
    [header]. [fn] itself is not modified ({!Fn.copy} runs first, so vids
    in the metadata arrays are valid in both functions).
    @raise Not_extractable when [header] is not a live block, or when a
    parameter read is reachable from it (the extracted method's arguments
    are the live-ins and phis, so a region [Param] would read the wrong
    frame). *)
