(* Loop extraction for on-stack replacement.

   [extract_loop fn ~header] outlines the continuation of [fn] at a loop
   header into a standalone function: every block reachable from [header]
   (the loop body, its exits and everything after them) is kept, and a new
   entry block binds the frame state the continuation needs as parameters.
   Running the extracted function with those parameters is equivalent to
   resuming the original activation at the header — it executes the
   remaining iterations *and* the post-loop tail, returning the original
   function's result, so an OSR transfer is one-way: the caller returns
   whatever the extracted method returns.

   Frame mapping: the parameters come in two runs.
   - One per *live-in*: a value used in the region whose slot is already
     populated when a frame sits at the header. Two shapes qualify. A
     definition *outside* the region dominates every region use through
     the header (SSA dominance), so the slot holds the value — the
     transfer just reads it out. A definition *inside* the region that
     dominates the header in the source function (state of an enclosing
     loop, when [header] is an inner header: the region walk wraps around
     the enclosing backedge and captures the outer header) is also
     populated — but entering at [header] skips it, so its uses need
     repair: the extracted body gains a fresh phi at the header that
     merges the parameter (entry edge) with the region definition (edges
     the definition dominates in the extracted body) and itself (edges it
     does not — inner backedges), and uses no longer dominated by the
     definition are rerouted to that phi. The phi is the only merge point
     iff every path that re-executes the definition re-crosses the header
     before the next rerouted read — true for the structured flow the
     lowerer emits, but not necessarily after loop peeling or inlining
     has reshaped the CFG. The repair therefore *checks* it: if any
     rerouted reader is reachable from the definition without passing
     the header, the value would be stale there and extraction refuses
     ([Not_extractable]) instead of producing wrong code.
   - One per *header phi*: the loop-carried values. At a backedge the
     interpreter has just evaluated the header's phis, so their slots hold
     the current iteration's values; they seed the extracted phis through
     the new entry edge.

   [x_live_ins] and [x_phis] record the original function's vids in
   parameter order ([Fn.copy] preserves ids, so they are also valid in the
   extracted body). The arrays are the explicit frame-mapping metadata: a
   backend transfers a frame by reading exactly those slots, in order. *)

open Types

type extraction = {
  x_fn : fn;
  x_live_ins : vid array;
  x_phis : vid array;
}

exception Not_extractable of string

let extract_loop (fn0 : fn) ~(header : bid) : extraction =
  if not (Fn.block_live fn0 header) then
    raise (Not_extractable (Printf.sprintf "block b%d is dead" header));
  let f = Fn.copy fn0 in
  (* The region: every block reachable from the header. *)
  let region : (bid, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec walk b =
    if not (Hashtbl.mem region b) then begin
      Hashtbl.replace region b ();
      List.iter walk (Fn.succs f b)
    end
  in
  walk header;
  let in_region b = Hashtbl.mem region b in
  (* A [Param] instruction inside the region would re-read the argument
     array — but the extracted method's arguments are the live-ins/phis,
     not the source function's. Refuse rather than remap: headers
     reachable from a parameter read are vanishingly rare (the entry
     block would have to sit inside the loop). *)
  Fn.iter_blocks
    (fun b ->
      if in_region b.b_id then
        List.iter
          (fun v ->
            match Fn.kind f v with
            | Param _ ->
                raise
                  (Not_extractable
                     (Printf.sprintf "parameter read v%d inside the region" v))
            | _ -> ())
          b.instrs)
    f;
  (* Values defined inside the region, with their defining block. *)
  let region_defs : (vid, bid) Hashtbl.t = Hashtbl.create 64 in
  Fn.iter_blocks
    (fun b ->
      if in_region b.b_id then
        List.iter (fun v -> Hashtbl.replace region_defs v b.b_id) b.instrs)
    f;
  (* Source-function dominators, while [f] is still an exact copy. *)
  let dom0 = Dominators.compute f in
  (* Header phis, in block order: the loop-carried state. *)
  let header_phis =
    List.filter (fun v -> Instr.is_phi (Fn.kind f v)) (Fn.block f header).instrs
  in
  let is_header_phi = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace is_header_phi v ()) header_phis;
  (* Live-ins: used in the region (instruction operands along region edges,
     If conditions, Return values) and populated at the header — defined
     outside the region, or inside it at a block that dominates the header
     in the source function ("pinned": enclosing-loop state whose uses are
     repaired below). Header-phi references are loop-carried state, not
     live-ins. *)
  let live_in : (vid, unit) Hashtbl.t = Hashtbl.create 16 in
  let pinned : (vid, bid) Hashtbl.t = Hashtbl.create 8 in
  let note v =
    if not (Hashtbl.mem is_header_phi v) then
      match Hashtbl.find_opt region_defs v with
      | None -> Hashtbl.replace live_in v ()
      | Some d ->
          if d <> header && Dominators.dominates dom0 ~a:d ~b:header then begin
            Hashtbl.replace live_in v ();
            Hashtbl.replace pinned v d
          end
  in
  Fn.iter_blocks
    (fun b ->
      if in_region b.b_id then begin
        List.iter
          (fun v ->
            match Fn.kind f v with
            | Phi { inputs; _ } ->
                (* only inputs along edges that survive extraction *)
                List.iter (fun (p, src) -> if in_region p then note src) inputs
            | k -> List.iter note (Instr.operands k))
          b.instrs;
        match b.term with
        | If { cond; _ } -> note cond
        | Return v -> note v
        | Goto _ | Unreachable -> ()
      end)
    f;
  let live_ins = List.sort compare (Hashtbl.fold (fun v () a -> v :: a) live_in []) in
  (* Record parameter types before any definition is deleted. *)
  let ty_of v = Fn.result_ty f (Fn.kind f v) in
  let param_tys =
    Array.of_list (List.map ty_of live_ins @ List.map ty_of header_phis)
  in
  (* New entry: one Param per live-in, one per header phi, then jump to the
     header. *)
  let e = Fn.add_block f in
  let live_params = List.mapi (fun k v -> (v, Fn.append f e (Param k))) live_ins in
  let n = List.length live_ins in
  let phi_params =
    List.mapi (fun j v -> (v, Fn.append f e (Param (n + j)))) header_phis
  in
  Fn.set_term f e (Goto header);
  f.entry <- e;
  (* Route every ordinary live-in use through its parameter. This also
     rewrites uses in blocks about to be deleted and phi inputs about to
     be filtered; both are harmless. Pinned live-ins keep their uses for
     now — the repair below reroutes only the uses their definition no
     longer dominates. *)
  List.iter
    (fun (v, p) ->
      if not (Hashtbl.mem pinned v) then Fn.replace_uses f ~old_v:v ~new_v:p)
    live_params;
  (* Patch phis: drop inputs along edges from outside the region (those
     edges no longer exist); header phis additionally gain the entry edge
     carrying their parameter. *)
  Fn.iter_blocks
    (fun b ->
      if in_region b.b_id then
        List.iter
          (fun v ->
            match Fn.kind f v with
            | Phi phi ->
                let kept =
                  List.filter (fun (p, _) -> in_region p) phi.inputs
                in
                let kept =
                  match List.assoc_opt v phi_params with
                  | Some p -> (e, p) :: kept
                  | None -> kept
                in
                phi.inputs <- kept
            | _ -> ())
          b.instrs)
    f;
  (* Repair pinned live-ins. Entering at the header skips their in-region
     definition, so a fresh phi at the header merges the parameter (entry
     edge), the definition (edges it still dominates — the path around the
     enclosing loop), and itself (edges it does not — inner backedges);
     uses the definition no longer dominates read the phi instead. *)
  if Hashtbl.length pinned > 0 then begin
    let domx = Dominators.compute f in
    let preds = Fn.preds f in
    let header_preds =
      List.filter
        (fun p -> p = e || in_region p)
        (Option.value ~default:[] (Hashtbl.find_opt preds header))
    in
    List.iter
      (fun (v, pv) ->
        match Hashtbl.find_opt pinned v with
        | None -> ()
        | Some d ->
            let dominated b = Dominators.dominates domx ~a:d ~b in
            (* Safety: a reader rerouted to the merge phi sees the value
               as of the last header crossing. If such a reader can be
               reached from [d] without crossing the header, [d] may
               have re-executed since, making that value stale. *)
            let tainted = Hashtbl.create 16 in
            let rec taint b =
              if b <> header && not (Hashtbl.mem tainted b) then begin
                Hashtbl.replace tainted b ();
                List.iter taint (Fn.succs f b)
              end
            in
            List.iter taint (Fn.succs f d);
            let refuse u =
              raise
                (Not_extractable
                   (Printf.sprintf
                      "pinned live-in v%d reaches its reader in b%d around \
                       the header" v u))
            in
            let check_edge p = if p <> e && not (dominated p) && Hashtbl.mem tainted p then refuse p in
            List.iter check_edge header_preds;
            Fn.iter_blocks
              (fun b ->
                if in_region b.b_id then begin
                  List.iter
                    (fun u ->
                      match Fn.kind f u with
                      | Phi { inputs; _ } ->
                          List.iter
                            (fun (p, src) -> if src = v then check_edge p)
                            inputs
                      | k ->
                          if
                            (not (dominated b.b_id))
                            && Hashtbl.mem tainted b.b_id
                            && List.mem v (Instr.operands k)
                          then refuse b.b_id)
                    b.instrs;
                  if (not (dominated b.b_id)) && Hashtbl.mem tainted b.b_id
                  then
                    match b.term with
                    | If { cond; _ } when cond = v -> refuse b.b_id
                    | Return rv when rv = v -> refuse b.b_id
                    | Goto _ | Unreachable | If _ | Return _ -> ()
                end)
              f;
            let vphi = Fn.prepend f header (Phi { ty = ty_of v; inputs = [] }) in
            (match Fn.kind f vphi with
            | Phi r ->
                r.inputs <-
                  List.map
                    (fun p ->
                      if p = e then (p, pv)
                      else if dominated p then (p, v)
                      else (p, vphi))
                    header_preds
            | _ -> assert false);
            Fn.iter_blocks
              (fun b ->
                if in_region b.b_id then begin
                  List.iter
                    (fun u ->
                      if u <> vphi then
                        let i = Fn.instr f u in
                        match i.kind with
                        | Phi r ->
                            r.inputs <-
                              List.map
                                (fun (p, src) ->
                                  if src = v && p <> e && not (dominated p)
                                  then (p, vphi)
                                  else (p, src))
                                r.inputs
                        | k ->
                            if not (dominated b.b_id) then
                              i.kind <-
                                Instr.map_operands
                                  (fun s -> if s = v then vphi else s)
                                  k)
                    b.instrs;
                  if not (dominated b.b_id) then
                    match b.term with
                    | If ({ cond; _ } as r) when cond = v ->
                        b.term <- If { r with cond = vphi }
                    | Return rv when rv = v -> b.term <- Return vphi
                    | Goto _ | Unreachable | If _ | Return _ -> ()
                end)
              f)
      live_params
  end;
  (* Drop everything outside the region (the new entry stays). *)
  let dead =
    Fn.fold_blocks
      (fun acc b ->
        if in_region b.b_id || b.b_id = e then acc else b.b_id :: acc)
      [] f
  in
  List.iter (Fn.delete_block f) dead;
  f.param_tys <- param_tys;
  f.spec_tys <- Array.copy param_tys;
  {
    x_fn = f;
    x_live_ins = Array.of_list live_ins;
    x_phis = Array.of_list header_phis;
  }
