(* Core IR type definitions.

   All mutually-referential types live here; behaviour lives in sibling
   modules (Instr, Fn, Program, ...). The IR is a CFG of basic blocks in SSA
   form. Instructions are identified by dense integer ids ([vid]) and blocks
   by [bid]; a function owns one table of each.

   Site keys: every [Call] and [If] carries the method id and ordinal it was
   assigned when the method was first lowered from the AST. Profiles are
   keyed by site, so they survive IR copying, specialization and inlining —
   an inlined callsite still finds the receiver profile collected while the
   callee ran in the interpreter. *)

type class_id = int
type meth_id = int
type vid = int
type bid = int

(* Static types. Function types from the frontend are desugared to classes
   (a synthetic base class per arity) before IR construction, so [Tobj]
   covers them. *)
type ty =
  | Tint
  | Tbool
  | Tunit
  | Tstring
  | Tarray of ty
  | Tobj of class_id

type const =
  | Cint of int
  | Cbool of bool
  | Cstring of string
  | Cunit
  | Cnull

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | Andb | Orb | Xorb | Eqb

type unop = Neg | Not

type intrinsic =
  | Iprint_int
  | Iprint_str
  | Iprint_bool
  | Istr_len
  | Istr_get   (* character code at index *)
  | Istr_eq
  | Iabs
  | Imin
  | Imax

(* Stable profile key: method that originally contained the site, plus the
   site's ordinal within that method. *)
type site = { sm : meth_id; sidx : int }

type callee =
  | Direct of meth_id
  | Virtual of string  (* selector; receiver is the first argument *)

type instr_kind =
  | Const of const
  | Param of int
  | Unop of unop * vid
  | Binop of binop * vid * vid
  | Phi of { ty : ty; mutable inputs : (bid * vid) list }
  | Call of { mutable callee : callee; args : vid list; site : site; rty : ty }
  | New of class_id
  | GetField of { obj : vid; slot : int; fname : string; fty : ty }
  | SetField of { obj : vid; slot : int; fname : string; value : vid }
  | NewArray of { ety : ty; len : vid }
  | ArrayGet of { arr : vid; idx : vid; ety : ty }
  | ArraySet of { arr : vid; idx : vid; value : vid }
  | ArrayLen of vid
  | TypeTest of { obj : vid; cls : class_id }  (* instance-of, subclass-aware *)
  | Intrinsic of intrinsic * vid list

type instr = { id : vid; mutable kind : instr_kind }

type terminator =
  | Goto of bid
  | If of { cond : vid; site : site; tb : bid; fb : bid }
  | Return of vid
  | Unreachable

type block = {
  b_id : bid;
  mutable instrs : vid list;       (* in execution order *)
  mutable term : terminator;
}

(* A function body. [param_tys] holds the *declared* parameter types;
   [spec_tys] holds callsite-refined types installed by deep inlining trials
   (initially equal to [param_tys]). Type inference reads [spec_tys]. *)
type fn = {
  fname : string;
  mutable param_tys : ty array;
  mutable spec_tys : ty array;
  rty : ty;
  mutable entry : bid;
  blocks : block option Support.Vec.t;
  instrs : instr option Support.Vec.t;
}

(* Class metadata. [layout] is the full field layout including inherited
   fields (single inheritance keeps slot indices stable down the
   hierarchy). [vtable] maps a selector to the implementing method. *)
type cls = {
  c_id : class_id;
  c_name : string;
  parent : class_id option;
  mutable layout : (string * ty) array;
  mutable vtable : (string * meth_id) list;
  mutable is_abstract : bool;
}

type meth = {
  m_id : meth_id;
  m_name : string;               (* qualified, e.g. "Point.getX" or "main" *)
  selector : string;             (* unqualified name used for dispatch *)
  owner : class_id option;       (* None for top-level functions *)
  m_param_tys : ty array;        (* includes [this] for instance methods *)
  m_rty : ty;
  mutable body : fn option;      (* None for abstract methods *)
}

type program = {
  classes : cls Support.Vec.t;
  meths : meth Support.Vec.t;
  meth_by_name : (string, meth_id) Hashtbl.t;
  mutable main : meth_id;
  (* memoized virtual-dispatch results, (receiver class, selector) ->
     implementing method; cleared whenever the class table or a vtable
     changes so it is never stale during frontend construction *)
  resolve_memo : (class_id * string, meth_id option) Hashtbl.t;
}
