(* Program-level tables: classes, methods, dispatch.

   The class table supports the queries the optimizer and inliner need:
   subtype tests (for type-test folding), unique-concrete-subtype (for
   devirtualization without profiles) and virtual dispatch resolution (for
   both the interpreter and polymorphic inlining). *)

open Types
module Vec = Support.Vec

(* The vec dummies are immediate values (never exposed): slots past the
   length are unreachable through the Vec API. *)
let dummy_cls : cls =
  { c_id = -1; c_name = "<dummy>"; parent = None; layout = [||]; vtable = []; is_abstract = true }

let dummy_meth : meth =
  { m_id = -1; m_name = "<dummy>"; selector = "<dummy>"; owner = None;
    m_param_tys = [||]; m_rty = Tunit; body = None }

let create () =
  {
    classes = Vec.create ~dummy:dummy_cls;
    meths = Vec.create ~dummy:dummy_meth;
    meth_by_name = Hashtbl.create 64;
    main = -1;
    resolve_memo = Hashtbl.create 128;
  }

(* Any change to the class table or a vtable can change what a selector
   resolves to anywhere down the hierarchy. *)
let invalidate_dispatch p = Hashtbl.reset p.resolve_memo

let cls p (c : class_id) : cls =
  if c < 0 || c >= Vec.length p.classes then
    invalid_arg (Printf.sprintf "Program.cls: unknown class %d" c);
  Vec.get p.classes c

let meth p (m : meth_id) : meth =
  if m < 0 || m >= Vec.length p.meths then
    invalid_arg (Printf.sprintf "Program.meth: unknown method %d" m);
  Vec.get p.meths m

let find_meth p name : meth_id option =
  Hashtbl.find_opt p.meth_by_name name

let num_classes p = Vec.length p.classes
let num_meths p = Vec.length p.meths

let add_class p ~name ~parent ~own_fields : class_id =
  let c_id = Vec.length p.classes in
  let inherited =
    match parent with
    | None -> [||]
    | Some pc -> (cls p pc).layout
  in
  let layout = Array.append inherited (Array.of_list own_fields) in
  Vec.push p.classes
    { c_id; c_name = name; parent; layout; vtable = []; is_abstract = false };
  invalidate_dispatch p;
  c_id

let add_meth p ~name ~selector ~owner ~param_tys ~rty : meth_id =
  if Hashtbl.mem p.meth_by_name name then
    invalid_arg (Printf.sprintf "Program.add_meth: duplicate method %s" name);
  let m_id = Vec.length p.meths in
  Vec.push p.meths
    { m_id; m_name = name; selector; owner; m_param_tys = param_tys; m_rty = rty; body = None };
  Hashtbl.replace p.meth_by_name name m_id;
  m_id

let set_body p m fn = (meth p m).body <- Some fn

(* Installs [m] in the vtable of its owner class, replacing any inherited
   entry for the same selector. Call after all classes exist. *)
let register_in_vtable p (m : meth_id) =
  let mm = meth p m in
  match mm.owner with
  | None -> ()
  | Some c ->
      let klass = cls p c in
      klass.vtable <-
        (mm.selector, m) :: List.remove_assoc mm.selector klass.vtable;
      invalidate_dispatch p

(* Walks up the hierarchy to resolve [selector] on receiver class [c]. *)
let rec resolve_walk p (c : class_id) (selector : string) : meth_id option =
  let klass = cls p c in
  match List.assoc_opt selector klass.vtable with
  | Some m -> Some m
  | None -> (
      match klass.parent with
      | Some parent -> resolve_walk p parent selector
      | None -> None)

(* Memoized dispatch: the interpreter resolves the same (receiver class,
   selector) pair on every virtual call, so the walk is paid once per pair
   per program epoch (see [invalidate_dispatch]). *)
let resolve p (c : class_id) (selector : string) : meth_id option =
  let key = (c, selector) in
  match Hashtbl.find_opt p.resolve_memo key with
  | Some r -> r
  | None ->
      let r = resolve_walk p c selector in
      Hashtbl.replace p.resolve_memo key r;
      r

let is_subclass p ~(sub : class_id) ~(sup : class_id) : bool =
  let rec up c = c = sup || (match (cls p c).parent with Some parent -> up parent | None -> false) in
  up sub

(* Direct subclasses of [c]. *)
let subclasses p (c : class_id) : class_id list =
  let acc = ref [] in
  Vec.iter
    (fun k -> if k.parent = Some c then acc := k.c_id :: !acc)
    p.classes;
  List.rev !acc

(* All concrete (non-abstract) classes at or below [c]. *)
let concrete_subtypes p (c : class_id) : class_id list =
  let acc = ref [] in
  let rec go c =
    let k = cls p c in
    if not k.is_abstract then acc := c :: !acc;
    List.iter go (subclasses p c)
  in
  go c;
  List.rev !acc

(* When a class hierarchy has exactly one concrete implementation below a
   static receiver type, virtual calls through it can be devirtualized
   without a profile (a simple class-hierarchy analysis). *)
let unique_concrete_subtype p (c : class_id) : class_id option =
  match concrete_subtypes p c with [ only ] -> Some only | _ -> None

let field_slot p (c : class_id) (fname : string) : int option =
  let layout = (cls p c).layout in
  let rec find i =
    if i >= Array.length layout then None
    else if fst layout.(i) = fname then Some i
    else find (i + 1)
  in
  find 0

let iter_meths f p = Vec.iter f p.meths
let iter_classes f p = Vec.iter f p.classes

(* Total size of all method bodies; used in tests and engine stats. *)
let total_ir_size p =
  Vec.fold_left
    (fun acc (m : meth) -> match m.body with Some fn -> acc + Fn.size fn | None -> acc)
    0 p.meths
