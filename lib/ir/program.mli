(** Program-level tables: classes, methods, virtual dispatch and the
    class-hierarchy queries the optimizer relies on. *)

open Types

val create : unit -> program

(** {1 Access} *)

val cls : program -> class_id -> cls
(** @raise Invalid_argument on an unknown id. *)

val meth : program -> meth_id -> meth
(** @raise Invalid_argument on an unknown id. *)

val find_meth : program -> string -> meth_id option
(** Lookup by qualified name (e.g. ["Point.getX"] or ["main"]). *)

val num_classes : program -> int
val num_meths : program -> int

(** {1 Construction} *)

val add_class :
  program -> name:string -> parent:class_id option -> own_fields:(string * ty) list ->
  class_id
(** The new class's layout is its parent's layout followed by [own_fields];
    single inheritance keeps slot indices stable down the hierarchy. *)

val add_meth :
  program -> name:string -> selector:string -> owner:class_id option ->
  param_tys:ty array -> rty:ty -> meth_id
(** @raise Invalid_argument on a duplicate qualified name. *)

val set_body : program -> meth_id -> fn -> unit

val register_in_vtable : program -> meth_id -> unit
(** Installs the method in its owner's vtable under its selector,
    replacing any same-selector entry. *)

(** {1 Dispatch and hierarchy queries} *)

val resolve : program -> class_id -> string -> meth_id option
(** Virtual dispatch. The hierarchy walk is memoized per (receiver class,
    selector) pair; construction-time mutations ({!add_class},
    {!register_in_vtable}) invalidate the memo, so results are always
    consistent with the current class table. *)

val invalidate_dispatch : program -> unit
(** Drops all memoized dispatch results. Called internally by the
    construction API; exposed for callers that mutate vtables directly. *)

val is_subclass : program -> sub:class_id -> sup:class_id -> bool
val subclasses : program -> class_id -> class_id list
val concrete_subtypes : program -> class_id -> class_id list

val unique_concrete_subtype : program -> class_id -> class_id option
(** Class-hierarchy analysis: the devirtualization opportunity when a
    static type has exactly one concrete implementation. *)

val field_slot : program -> class_id -> string -> int option

(** {1 Iteration} *)

val iter_meths : (meth -> unit) -> program -> unit
val iter_classes : (cls -> unit) -> program -> unit

val total_ir_size : program -> int
(** Sum of {!Fn.size} over all method bodies. *)
