(* Crash-safe file emission.

   Results files (bench JSON, traces, saved profiles) are written to a
   [path ^ ".tmp"] sibling and renamed into place only on success, so an
   interrupted or failing run can never leave a truncated file behind —
   consumers either see the complete old contents or the complete new
   ones. Rename within a directory is atomic on POSIX. *)

let tmp_path (path : string) : string = path ^ ".tmp"

(* [with_atomic_out path f] runs [f] with a channel on the temp sibling;
   on normal return the temp file replaces [path], on exception it is
   removed and the exception rethrown. *)
let with_atomic_out (path : string) (f : out_channel -> 'a) : 'a =
  let tmp = tmp_path path in
  let oc = open_out_bin tmp in
  match
    let v = f oc in
    close_out oc;
    v
  with
  | v ->
      Sys.rename tmp path;
      v
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_atomic (path : string) (contents : string) : unit =
  with_atomic_out path (fun oc -> output_string oc contents)
