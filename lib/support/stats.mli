(** Statistics helpers for the benchmark harness. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val geomean : float list -> float
(** Geometric mean.
    @raise Invalid_argument on empty input or non-positive values. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on an empty list. *)

val steady_state_window : float list -> float list
(** The last 40% of the samples capped at 20, mirroring the paper's
    peak-performance methodology ("average of the last 40%, but at most 20,
    repetitions").
    @raise Invalid_argument on an empty list. *)

val steady_state_mean : float list -> float

val percentile : int list -> float -> int
(** Exact rank percentile of an {b ascending} int list: the smallest
    element whose rank reaches [ceil (q * n)]; 0 when the list is empty.
    Shared by {!Jit.Serve} and the timeline's fleet snapshots. *)

val percentiles : int list -> int * int * int * int
(** [(p50, p90, p99, max)] of an ascending int list, all 0 when empty. *)
