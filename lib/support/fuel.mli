(** An ambient compile-time fuel budget — the watchdog that bounds a
    runaway compilation (pathological inliner expansion, endless
    canonicalization) without threading a counter through every
    signature.

    With no budget installed every {!spend} is one [None] check, so the
    plumbing costs nothing in production. Checkpoints sit at phase and
    fixpoint-round boundaries only, so {!Exhausted} always fires between
    consistent IR states; {!Inliner.Algorithm.compile} catches it and
    returns the best body completed so far, or lets it escape to the
    engine's bailout path when no round finished. *)

exception Exhausted

val enabled : unit -> bool
(** Is a budget installed? Callers may pre-check to skip snapshot work
    that only matters under a watchdog. *)

val remaining : unit -> int option
(** Units left in the ambient budget; [None] when disabled. *)

val spend : int -> unit
(** [spend n] charges [n] units.
    @raise Exhausted once the ambient budget runs dry; no-op without
    one. *)

val with_budget : int -> (unit -> 'a) -> 'a
(** [with_budget n f] runs [f] under a fresh budget of [n] units,
    restoring the previous ambient budget on exit (exception-safe,
    nestable). *)
