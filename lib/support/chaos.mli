(** Deterministic fault injection: a seeded PRNG fault plan for proving
    graceful degradation.

    The tiered engine calls {!roll} at fixed injection points; each call
    draws from one seeded {!Rng}, so a (program, seed, rate) triple
    replays the exact same fault sequence every run — chaos traces stay
    byte-identical and any failure is bisectable by seed. Ambient and
    zero-cost when disabled (one [None] check per point), mirroring
    {!Obs.Trace}. Enabled from the CLI with
    [selvm run|bench --chaos-seed N --chaos-rate R]. *)

type fault =
  | Compiler_crash      (** the compiler raises mid-compilation *)
  | Verifier_reject     (** the produced body fails verification *)
  | Fuel_exhaustion     (** the compile watchdog budget is starved *)
  | Invalidation_storm  (** installed code hit by a spec-miss burst *)

val fault_to_string : fault -> string

exception Injected of fault
(** Raised by the engine's injection points for [Compiler_crash] and
    [Verifier_reject]; contained by the bailout machinery like any other
    compile failure. *)

type plan = {
  seed : int;
  rate : float;  (** injection probability per opportunity *)
  rng : Rng.t;
  mutable rolls : int;  (** opportunities offered so far *)
  mutable injected : int;  (** faults fired so far *)
}

val enabled : unit -> bool
val plan : unit -> plan option

val make : seed:int -> rate:float -> plan
(** A fresh plan, not yet ambient — hold one per tenant and activate it
    around that tenant's execution slices with {!with_plan}.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val install : seed:int -> rate:float -> unit
(** Makes a fresh plan ambient until {!uninstall}.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val uninstall : unit -> unit

val scoped : seed:int -> rate:float -> (unit -> 'a) -> 'a
(** Runs the callback under a fresh plan, restoring the previously
    ambient plan on exit (exception-safe). *)

val with_plan : plan option -> (unit -> 'a) -> 'a
(** Runs the callback with the given (possibly [None]) plan ambient,
    restoring the previous one on exit. Does not reset the plan's RNG
    stream — the serve driver uses this to resume each tenant's private
    fault plan across multiplexed execution slices, keeping every
    tenant's fault sequence independent of its neighbors. *)

val roll : fault -> bool
(** One injection opportunity: true with probability [rate], always
    false when disabled. The argument documents the site; all rolls
    draw from the plan's single deterministic stream. *)

val starved_fuel : unit -> int
(** A deterministic near-zero watchdog budget for an injected
    [Fuel_exhaustion]; [0] when disabled. *)
