(* An ambient compile-time fuel budget — the watchdog against runaway
   compilations.

   Mirrors the [Obs.Trace] ambient-sink pattern: with no budget installed
   every checkpoint is one [None] check, so the plumbing is zero-cost in
   production. The optimizer driver and the inliner call [spend] at phase
   and fixpoint-round boundaries (never mid-transform), so [Exhausted]
   only ever fires between consistent IR states. *)

exception Exhausted

type budget = { mutable remaining : int }

let current : budget option ref = ref None

let enabled () = !current <> None

let remaining () =
  match !current with Some b -> Some b.remaining | None -> None

(* [spend n] charges [n] units against the ambient budget; raises
   [Exhausted] once it runs dry. A no-op without a budget. *)
let spend (n : int) : unit =
  match !current with
  | None -> ()
  | Some b ->
      b.remaining <- b.remaining - n;
      if b.remaining < 0 then raise Exhausted

(* [with_budget n f] runs [f] under a fresh budget of [n] units,
   restoring the previously ambient budget (or none) on exit —
   exception-safe, nestable. *)
let with_budget (n : int) (f : unit -> 'a) : 'a =
  let saved = !current in
  current := Some { remaining = n };
  Fun.protect ~finally:(fun () -> current := saved) f
