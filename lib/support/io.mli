(** Crash-safe file emission: write-to-temp then rename, so interrupted
    runs never leave truncated results files behind. *)

val tmp_path : string -> string
(** The temp sibling used during an atomic write ([path ^ ".tmp"]). *)

val with_atomic_out : string -> (out_channel -> 'a) -> 'a
(** [with_atomic_out path f] runs [f] with a channel on the temp sibling
    of [path]; on return the temp file is renamed over [path] (atomic
    within a directory on POSIX), on exception it is removed and the
    exception rethrown — [path] is never left truncated. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] is {!with_atomic_out} writing the whole
    string. *)
