(** Saturating non-negative integer arithmetic for scheduler scoring and
    cooldown/deadline accounting.

    Long-lived serving runs accumulate cycle stamps, queue ages and
    backoff distances without bound; a wrapped sum or product turns a
    "retry far in the future" gate into "retry immediately" (the PR 7
    overflow class). Every score or gate the engine compares against a
    clock must therefore go through these, never through raw [+]/[*].

    Negative operands are clamped to 0 first: all the quantities these
    combine (cycles, counts, sizes, ages) are non-negative by
    construction, and a negative intermediate reaching a gate comparison
    is exactly the bug class this module exists to kill. *)

val add : int -> int -> int
(** [add a b] is [a + b], saturating at [max_int]. *)

val mul : int -> int -> int
(** [mul a b] is [a * b], saturating at [max_int]. *)

val sub : int -> int -> int
(** [sub a b] is [a - b] clamped below at [0]. *)
