(* Deterministic fault injection: a seeded PRNG fault plan.

   The tiered engine asks this module, at fixed code points, whether to
   inject a failure — a compiler crash, a verifier reject, a starved fuel
   budget, or a spec-miss/invalidation storm against installed code.
   Every decision is a draw from one seeded [Rng], so a (program, seed,
   rate) triple replays the exact same fault sequence run after run:
   chaos traces are byte-identical and failures are bisectable.

   Like [Obs.Trace] and [Fuel], the plan is ambient and zero-cost when
   disabled: every injection point reduces to one [None] check. *)

type fault =
  | Compiler_crash      (* the compiler raises mid-compilation *)
  | Verifier_reject     (* the produced body fails verification *)
  | Fuel_exhaustion     (* the compile watchdog budget is starved *)
  | Invalidation_storm  (* installed code hit by a spec-miss burst *)

let fault_to_string = function
  | Compiler_crash -> "compiler_crash"
  | Verifier_reject -> "verifier_reject"
  | Fuel_exhaustion -> "fuel_exhaustion"
  | Invalidation_storm -> "invalidation_storm"

exception Injected of fault

let () =
  Printexc.register_printer (function
    | Injected f -> Some ("chaos: injected " ^ fault_to_string f)
    | _ -> None)

type plan = {
  seed : int;
  rate : float;            (* injection probability per opportunity *)
  rng : Rng.t;
  mutable rolls : int;     (* opportunities offered *)
  mutable injected : int;  (* faults fired *)
}

let current : plan option ref = ref None

let enabled () = !current <> None

let plan () = !current

let make ~(seed : int) ~(rate : float) : plan =
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    invalid_arg "Chaos.make: rate must be in [0, 1]";
  { seed; rate; rng = Rng.create seed; rolls = 0; injected = 0 }

let install ~(seed : int) ~(rate : float) : unit = current := Some (make ~seed ~rate)

let uninstall () : unit = current := None

(* [scoped ~seed ~rate f] runs [f] under a fresh plan, restoring whatever
   plan (or none) was ambient before — exception-safe. *)
let scoped ~(seed : int) ~(rate : float) (f : unit -> 'a) : 'a =
  let saved = !current in
  install ~seed ~rate;
  Fun.protect ~finally:(fun () -> current := saved) f

(* [with_plan p f] makes an *existing* plan ambient (or none, for
   [None]), restoring the previous one afterwards. Unlike [scoped] this
   does not reset the plan's RNG stream: the multi-tenant serve driver
   re-installs each tenant's own plan around every execution slice, so a
   tenant's fault sequence is a pure function of its own seed and its
   own deterministic execution — byte-identical whether the tenant runs
   solo or multiplexed with others. *)
let with_plan (p : plan option) (f : unit -> 'a) : 'a =
  let saved = !current in
  current := p;
  Fun.protect ~finally:(fun () -> current := saved) f

(* [roll fault] offers the plan one injection opportunity; true with
   probability [rate]. Always false when disabled. The [fault] argument
   only documents the site — every roll draws from the same stream, so
   the draw sequence (and thus the whole fault plan) is a pure function
   of the seed and the engine's deterministic execution. *)
let roll (_fault : fault) : bool =
  match !current with
  | None -> false
  | Some p ->
      p.rolls <- p.rolls + 1;
      let hit = Rng.float p.rng < p.rate in
      if hit then p.injected <- p.injected + 1;
      hit

(* A starved watchdog budget for an injected fuel exhaustion: small
   enough to abort most compilations, spread over [0, 32) checkpoints so
   both bail-out-entirely (no round finished) and best-body-so-far
   (mid-flight abort) paths get exercised. *)
let starved_fuel () : int =
  match !current with None -> 0 | Some p -> Rng.int p.rng 32
