(* A minimal JSON emitter — enough to write benchmark result files without
   pulling in a JSON library. Emission only; nothing in the tree parses
   JSON back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write (buf : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* JSON has no NaN/infinity; and %.17g round-trips doubles *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf
