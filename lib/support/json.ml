(* A minimal JSON emitter and reader — enough to write benchmark result
   files and read back the JSONL traces `Obs.Trace` emits, without pulling
   in a JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write (buf : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* JSON has no NaN/infinity; and %.17g round-trips doubles *)
      if Float.is_finite f then begin
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s;
        (* keep a decimal point so the value re-parses as Float, not Int *)
        if String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s then
          Buffer.add_string buf ".0"
      end
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---------- parsing ----------

   A recursive-descent reader for the subset this module emits (which is
   all of JSON except exotic number forms). Used by `selvm events` to
   summarize trace files and by the round-trip tests. *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let error c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error c "bad hex digit in \\u escape"

(* \uXXXX escapes decode to UTF-8 bytes (the emitter only produces them
   for control characters, which are single bytes). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            let code = ref 0 in
            for _ = 1 to 4 do
              match peek c with
              | Some ch ->
                  code := (!code * 16) + hex_digit c ch;
                  advance c
              | None -> error c "truncated \\u escape"
            done;
            add_utf8 buf !code;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected %C" ch)

let of_string (s : string) : (t, string) result =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Parse_error msg -> Error msg

(* ---------- object accessors ---------- *)

let member (key : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
