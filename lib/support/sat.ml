(* Saturating non-negative arithmetic: the one overflow-proof path for
   every quantity the engine compares against a clock or a gate. See the
   interface for why raw [+]/[*] are banned in scoring code. *)

let clamp a = if a < 0 then 0 else a

let add a b =
  let a = clamp a and b = clamp b in
  if a > max_int - b then max_int else a + b

let mul a b =
  let a = clamp a and b = clamp b in
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let sub a b =
  let a = clamp a and b = clamp b in
  if a <= b then 0 else a - b
