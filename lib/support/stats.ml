(* Small statistics helpers used by the benchmark harness to report
   mean/stddev in the same style as the paper's evaluation. *)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      let logs = List.map (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
        else log x) xs
      in
      exp (mean logs)

let min_max xs =
  match xs with
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

(* The paper: "we computed the average of the last 40% (but at most 20)
   repetitions" — steady-state window selection. *)
let steady_state_window xs =
  let n = List.length xs in
  if n = 0 then invalid_arg "Stats.steady_state_window: empty";
  let k = min 20 (max 1 (n * 40 / 100)) in
  let rec drop i = function
    | rest when i = 0 -> rest
    | [] -> []
    | _ :: tl -> drop (i - 1) tl
  in
  drop (n - k) xs

let steady_state_mean xs = mean (steady_state_window xs)

(* Exact rank percentile of an ascending int list: the smallest element
   whose rank reaches ceil(q * n); 0 on an empty list. The serving layer
   and the timeline's fleet snapshots share this so their percentile
   semantics can never drift apart. *)
let percentile (xs : int list) (q : float) : int =
  let n = List.length xs in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    List.nth xs (min (max rank 1) n - 1)

(* The fleet summary tuple: p50 / p90 / p99 / max of an ascending list
   (all 0 when empty). *)
let percentiles (xs : int list) : int * int * int * int =
  ( percentile xs 0.50,
    percentile xs 0.90,
    percentile xs 0.99,
    percentile xs 1.0 )
