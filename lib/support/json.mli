(** A minimal JSON emitter and reader for benchmark result files and the
    JSONL traces {!Obs.Trace} writes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering; strings are escaped, non-finite floats become
    [null]. *)

val of_string : string -> (t, string) result
(** Parses one JSON value (the subset {!to_string} emits — all of JSON
    except exotic number forms). Numbers without [.]/[e] parse as [Int],
    others as [Float]; [\uXXXX] escapes decode to UTF-8. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None] for
    missing keys and non-objects. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
