(** A minimal JSON emitter for benchmark result files. Emission only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering; strings are escaped, non-finite floats become
    [null]. *)
