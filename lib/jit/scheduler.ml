(* Bounded prioritized compile queue: see the interface for the policy.

   Capacities are small (the serve default is 4 per tenant), so the
   representation is a plain list with linear scans — obviously
   deterministic, no heap-order ties to reason about. [seq] numbers
   requests in arrival order and breaks every score tie: pops prefer the
   oldest, displacement sheds the youngest, so the tie policy is "the
   request that has waited longest wins". *)

open Support

type 'k req = {
  rq_meth : 'k;
  mutable rq_hotness : int;
  rq_enqueued_at : int;
  rq_seq : int;
}

type 'k t = {
  cap : int;
  age_unit : int;
  mutable reqs : 'k req list;  (* arrival order, newest first *)
  mutable next_seq : int;
  mutable busy : int;          (* compiler occupied until this time *)
}

let create ~capacity ~age_unit =
  { cap = max 0 capacity; age_unit = max 1 age_unit;
    reqs = []; next_seq = 0; busy = 0 }

let capacity t = t.cap
let length t = List.length t.reqs

let score ~hotness ~age ~age_unit =
  let age_unit = max 1 age_unit in
  Sat.mul hotness (Sat.add 1 (Sat.sub age 0 / age_unit))

let score_of t now r =
  score ~hotness:r.rq_hotness ~age:(Sat.sub now r.rq_enqueued_at)
    ~age_unit:t.age_unit

type 'k admission =
  | Admitted
  | Bumped
  | Displaced of 'k
  | Rejected

(* The waiting request with the lowest score; ties pick the youngest
   (largest seq), so displacement never sheds the longer-waiting side of
   a tie. *)
let cheapest t now =
  match t.reqs with
  | [] -> None
  | r0 :: rest ->
      Some
        (List.fold_left
           (fun best r ->
             let sb = score_of t now best and sr = score_of t now r in
             if sr < sb || (sr = sb && r.rq_seq > best.rq_seq) then r else best)
           r0 rest)

let enqueue t ~meth ~hotness ~now =
  match List.find_opt (fun r -> r.rq_meth = meth) t.reqs with
  | Some r ->
      r.rq_hotness <- max r.rq_hotness hotness;
      Bumped
  | None ->
      let admit () =
        let r =
          { rq_meth = meth; rq_hotness = hotness; rq_enqueued_at = now;
            rq_seq = t.next_seq }
        in
        t.next_seq <- t.next_seq + 1;
        t.reqs <- r :: t.reqs
      in
      if List.length t.reqs < t.cap then begin
        admit ();
        Admitted
      end
      else
        match cheapest t now with
        | None -> Rejected (* capacity 0 *)
        | Some victim ->
            let incoming = score ~hotness ~age:0 ~age_unit:t.age_unit in
            if incoming <= score_of t now victim then Rejected
            else begin
              t.reqs <- List.filter (fun r -> r != victim) t.reqs;
              admit ();
              Displaced victim.rq_meth
            end

let mem t meth = List.exists (fun r -> r.rq_meth = meth) t.reqs

let remove t meth = t.reqs <- List.filter (fun r -> r.rq_meth <> meth) t.reqs

let busy_until t = t.busy

let occupy t ~until = if until > t.busy then t.busy <- until

let pop t ~now =
  if now < t.busy then None
  else
    match t.reqs with
    | [] -> None
    | r0 :: rest ->
        let best =
          List.fold_left
            (fun best r ->
              let sb = score_of t now best and sr = score_of t now r in
              if sr > sb || (sr = sb && r.rq_seq < best.rq_seq) then r else best)
            r0 rest
        in
        t.reqs <- List.filter (fun r -> r != best) t.reqs;
        Some (best.rq_meth, Sat.sub now best.rq_enqueued_at)
