(** The paper's benchmarking methodology (Section V): repeat an entry
    method, record per-iteration simulated cycles, report peak performance
    as the mean of the last 40% (at most 20) iterations plus installed
    code size. *)

type iteration = {
  index : int;
  cycles : int;
  compiled_methods : int;  (** code-cache population after the iteration *)
}

type run = {
  name : string;
  iterations : iteration list;
  peak_cycles : float;
  peak_stddev : float;
  code_size : int;
  compile_cycles : int;
  pending_methods : int;
      (** async compilations still in flight when the run ended *)
  pending_code_size : int;
  timeline : (string * int * int) list;
      (** each install as (method, size, at_cycles), chronological *)
  invalidated : (string * int) list;
      (** each invalidation as (method, at_cycles), chronological *)
  bailed_out : (string * string * int) list;
      (** each contained compile failure as (method, reason, at_cycles) *)
  blacklisted : string list;
      (** methods permanently retired to the interpreter *)
  output : string;
  ic_sites : int;  (** call sites dispatched through an inline cache *)
  ic_hits : int;
  ic_misses : int;
  ic_megamorphic : int;
      (** dispatches taken by a megamorphic cache's fallback path *)
  dispatch : string;
      (** the interpreted tier's dispatch strategy for this run:
          ["threaded"], ["match"] or ["walker"] *)
  superinst : Runtime.Interp.sstat list;
      (** the mined superinstruction table at end of run *)
}

val ic_hit_rate : run -> float
(** Hits over total inline-cached dispatches; [0.0] when none ran. *)

val ic_hit_rate_opt : run -> float option
(** [None] when the run had no inline-cached dispatches at all — reports
    should show null there, not a 0% hit rate. *)

val run_benchmark :
  ?setup:string -> iters:int -> Engine.t -> entry:string -> label:string -> run
(** Runs [entry] (a 0-argument function) [iters] times; [setup] runs once
    beforehand when given. Ready pending compilations are flushed at the
    end ({!Engine.flush_pending}), so [code_size] accounts for async
    compilations whose method was never re-entered; still-in-flight
    bodies are reported in [pending_methods]/[pending_code_size]. *)

val timeline_json : run -> Support.Json.t
(** The compile-timeline section benches embed in BENCH_*.json: installs,
    invalidations, code size, compile cycles, pending accounting. *)

val ic_json : run -> Support.Json.t
(** The run's inline-cache totals: sites, hits, misses, megamorphic
    dispatches, hit rate (null when the run had no virtual dispatches). *)

val superinst_json : run -> Support.Json.t
(** The run's mined superinstruction table: pattern/site/weight rows plus
    aggregate fused-site and weight totals. *)

val run_json : run -> Support.Json.t
(** The complete run as JSON — shared by `selvm bench --json` and the
    bench smoke's per-run sections: name, iteration summary and series,
    dispatch strategy, {!ic_json}, {!superinst_json}, {!timeline_json}. *)
