(** Bounded code cache: residency accounting and cost-benefit/LRU
    eviction for installed bodies.

    The engine still owns the actual [meth -> fn] table; this module
    decides *which* methods stay resident when installed code size is
    capped. Each resident entry carries its size (IR nodes — the same
    units as the Table I code-size metric), its last-use time and its
    use count; when an install pushes total residency past [capacity],
    entries are evicted lowest-retention-first until it fits.

    Retention is [last_used + 64·uses − size] in saturating arithmetic:
    recently and frequently entered code is worth keeping, big bodies
    cost more to keep — the cost-benefit shape of the paper's Figure 10
    budget discussion, with LRU as the dominant term so the policy stays
    predictable. The just-installed entry competes like any other; under
    a tiny capacity it can be evicted immediately after installing,
    which keeps the trace honest about churn instead of silently
    refusing the install.

    Like {!Scheduler}, all decisions are pure functions of this cache's
    own history — no ambient state — so per-tenant caches cannot couple
    tenants to each other. *)

type 'k t

val create : capacity:int -> 'k t
(** [capacity] is the total resident size budget in IR nodes, clamped to
    [>= 0]. Capacity 0 admits nothing: every install evicts itself. *)

val capacity : 'k t -> int

val used : 'k t -> int
(** Total resident size. *)

val resident : 'k t -> int
(** Resident entry count. *)

val mem : 'k t -> 'k -> bool

val retain_score : last_used:int -> uses:int -> size:int -> int
(** [last_used + 64·uses − size], saturating and clamped to [>= 0].
    Exposed for tests and evict-event diagnostics. *)

val install : 'k t -> meth:'k -> size:int -> now:int -> 'k list
(** Admits [meth] (replacing any previous entry for it), then evicts
    lowest-retention entries until residency fits [capacity]. Returns
    the victims in eviction order — possibly including [meth] itself.
    Retention ties evict the oldest install first. *)

val touch : 'k t -> 'k -> now:int -> unit
(** Records an entry of [meth]'s compiled code: refreshes last-use and
    bumps the use count. A no-op when not resident. *)

val remove : 'k t -> 'k -> unit
(** Drops [meth]'s residency without an eviction decision (the method
    was invalidated or blacklisted through the normal paths). A no-op
    when absent. *)
