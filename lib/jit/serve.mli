(** The multi-tenant serving driver behind `selvm serve`.

    Multiplexes N tenant workloads, each on its own {!Engine} armed with
    per-tenant serving budgets (bounded compile queue, bounded code
    cache, per-compile deadline) and — optionally — its own
    deterministic {!Support.Chaos} fault plan, seeded from the tenant id.
    The driver round-robins one benchmark iteration per tenant per turn
    until every tenant has finished its iterations.

    The load-bearing invariant: every decision affecting a tenant is a
    function of that tenant's own state (its engine's clocks and tables,
    its own chaos plan, its id-derived seed). The driver only
    interleaves; it never routes one tenant's pressure into another's
    engine. Consequently a tenant's output, step count, cycle count and
    checksum are byte-identical whether it runs in a fleet of 8 or alone
    — {!run} on a filtered tenant list reproduces exactly the per-tenant
    numbers of the full fleet, which is what the chaos-under-load soak
    gate asserts. *)

type tenant = {
  tn_id : string;
  (** stable identity, e.g. ["long-loop#0"] — the chaos seed derives
      from this, so a tenant keeps its fault plan when the fleet around
      it changes *)
  tn_make : unit -> Ir.Types.program * Engine.config;
  (** fresh program and config per engine. The config must carry a fresh
      compiler instance: stateful compilers (the incremental inliner's
      trial cache) must never be shared across tenants. *)
  tn_iters : int;  (** benchmark iterations to serve *)
}

type limits = {
  queue_capacity : int option;   (** per-tenant compile-queue bound *)
  queue_age_unit : int;          (** cycles of waiting worth one hotness *)
  cache_capacity : int option;   (** per-tenant code-cache bound, IR nodes *)
  compile_deadline : int option; (** per-compile {!Support.Fuel} budget *)
  chaos_rate : float;            (** 0.0: no fault injection *)
  chaos_seed : int;              (** base seed; per-tenant seeds derive from it *)
}

val default_limits : limits
(** Everything off: unbounded queue-less engines, no chaos. *)

val seed_for : base:int -> string -> int
(** The tenant's chaos seed: a deterministic hash of the tenant id mixed
    with the base seed. Depends only on (base, id) — never on fleet
    composition — so solo reruns reproduce fleet fault plans. *)

val parse_tenants : string -> ((string * int) list, string) result
(** Parses a `--tenants` spec: comma-separated [name] or [name*count]
    entries, e.g. ["long-loop*3,gauss-mix"]. Returns the (name, count)
    pairs in spec order, or a one-line diagnostic. Workload-name
    validation is the caller's (the CLI resolves against its registry). *)

type tenant_report = {
  tr_id : string;
  tr_seed : int;               (** chaos seed (0 when chaos is off) *)
  tr_iters : int;
  tr_checksum : int;           (** fold of the per-iteration bench checksums *)
  tr_output : string;          (** full program output *)
  tr_steps : int;
  tr_cycles : int;
  tr_compile_cycles : int;
  tr_installs : int;
  tr_invalidations : int;
  tr_evictions : int;
  tr_sheds : int;
  tr_bailouts : int;
  tr_blacklisted : int;
  tr_cache_used : int;
      (** resident code at end of run, IR nodes; total installed-and-live
          code when the cache is unbounded — the demand a cache bound is
          sized against *)
  tr_queue_depth : int;        (** requests still waiting at end of run *)
  tr_queue_wait_p50 : int;
  tr_queue_wait_p90 : int;
  tr_queue_wait_p99 : int;
  tr_queue_wait_max : int;
  tr_ttp_p50 : int;            (** time-to-peak percentiles, cycles *)
  tr_ttp_p90 : int;
  tr_ttp_p99 : int;
  tr_ttp_max : int;
}

val percentile : int list -> float -> int
(** Exact rank percentile of an ascending list (0 when empty) — the
    shared {!Support.Stats.percentile}, re-exported for the fleet
    sections of the bench smoke. *)

val run :
  ?limits:limits -> ?timeline:Obs.Timeline.t -> ?slo:Obs.Slo.monitor ->
  tenant list -> tenant_report list
(** Serves the fleet to completion and reports per tenant, in input
    order. Emits [serve_start] / [serve_slice] / [serve_tenant_done]
    trace events (the per-engine [serve_*]/[evict]/[shed] events come
    from {!Engine}); each slice runs under the tenant's own chaos plan
    and trace clock.

    With [timeline], every tenant's engine samples its gauges on its own
    clock ({!Engine.attach_timeline}) and the driver adds one
    [timeline_fleet] row per round-robin turn when due — queue/cache
    totals plus p50/p90/p99/max latency percentiles across the fleet.
    With [slo], the shared monitor runs over every tenant's samples
    (per-tenant detector state) and firings become [slo_violation]
    trace events. Sampling only reads engine state, so arming it never
    perturbs tenant behavior — the fleet-vs-solo isolation invariant
    holds with the timeline on. *)

val report_json : tenant_report list -> Support.Json.t
(** Deterministic fleet report: per-tenant outputs are digested (MD5
    hex), latency percentiles and churn counters inline — byte-identical
    across same-seed runs, and per-tenant entries identical between a
    fleet run and the tenant's solo run. *)
