(* Benchmark methodology from the paper's evaluation (Section V):
   repeat a benchmark's entry method, record per-iteration simulated
   cycles, and report peak performance as the mean of the last 40% (at
   most 20) iterations, plus the installed code size. *)

type iteration = {
  index : int;
  cycles : int;             (* simulated execution cycles of this iteration *)
  compiled_methods : int;   (* code-cache size after the iteration *)
}

type run = {
  name : string;            (* benchmark + configuration label *)
  iterations : iteration list;
  peak_cycles : float;      (* steady-state mean *)
  peak_stddev : float;
  code_size : int;          (* installed code size at the end *)
  compile_cycles : int;
  pending_methods : int;    (* async compilations still in flight at the end *)
  pending_code_size : int;
  timeline : (string * int * int) list;  (* method, size, at_cycles; chronological *)
  invalidated : (string * int) list;     (* method, at_cycles; chronological *)
  bailed_out : (string * string * int) list;
  (* method, reason, at_cycles; chronological compile failures *)
  blacklisted : string list;  (* methods permanently retired to the interpreter *)
  output : string;          (* program output, for differential checking *)
  (* inline-cache totals over every site the run dispatched through *)
  ic_sites : int;
  ic_hits : int;
  ic_misses : int;
  ic_megamorphic : int;
  dispatch : string;        (* interpreted-tier dispatch: threaded/match/walker *)
  superinst : Runtime.Interp.sstat list;  (* mined fusion table at end of run *)
}

(* [None] when the run dispatched through no virtual sites at all — a
   0.0 "hit rate" there would be indistinguishable from a pathological
   all-miss run, so reports emit null instead. *)
let ic_hit_rate_opt (r : run) : float option =
  let d = r.ic_hits + r.ic_misses + r.ic_megamorphic in
  if d = 0 then None else Some (float_of_int r.ic_hits /. float_of_int d)

let ic_hit_rate (r : run) : float =
  match ic_hit_rate_opt r with Some rate -> rate | None -> 0.0

(* Runs [entry] (a 0-argument Sel function returning Int or Unit) [iters]
   times on a fresh engine. A [setup] entry, when present, runs once
   beforehand (workload initialization).

   At the end the engine's ready pending compilations are flushed so
   [code_size] (the Table I metric) covers async compilations whose
   simulated latency elapsed but whose method was never re-entered;
   bodies still in flight are reported separately in [pending_*]. *)
let run_benchmark ?(setup : string option) ~(iters : int) (engine : Engine.t)
    ~(entry : string) ~(label : string) : run =
  (* run boundary marker: [Obs.Summary.split_runs] keys per-run aggregates
     on it when one trace holds several harness runs *)
  Obs.Trace.emit "run_start" (fun () ->
      Support.Json.
        [ ("label", String label); ("entry", String entry); ("iters", Int iters) ]);
  (match setup with
  | Some s -> ignore (Engine.run_meth engine s [ Runtime.Values.Vunit ])
  | None -> ());
  let iterations = ref [] in
  for index = 1 to iters do
    let c0 = engine.vm.cycles in
    ignore (Engine.run_meth engine entry [ Runtime.Values.Vunit ]);
    iterations :=
      {
        index;
        cycles = engine.vm.cycles - c0;
        compiled_methods = Engine.installed_methods engine;
      }
      :: !iterations
  done;
  let iterations = List.rev !iterations in
  ignore (Engine.flush_pending engine);
  let series = List.map (fun i -> float_of_int i.cycles) iterations in
  let window = Support.Stats.steady_state_window series in
  let meth_name m = (Ir.Program.meth engine.vm.prog m).m_name in
  (* inline-cache accounting: one ic_site event per dispatched-through
     site (already merged across recompilations and ordered by site, so
     identical runs emit identical traces), plus run-level totals *)
  let ics = Engine.ic_stats engine in
  List.iter
    (fun (st : Runtime.Interp.ic_stat) ->
      Obs.Trace.emit "ic_site" (fun () ->
          Support.Json.
            [
              ("m", Int st.st_site.sm);
              ("meth", String (meth_name st.st_site.sm));
              ("sidx", Int st.st_site.sidx);
              ("selector", String st.st_selector);
              ("ic_hit", Int st.st_hits);
              ("ic_miss", Int st.st_misses);
              ("ic_megamorphic", Int st.st_mega);
            ]))
    ics;
  let sum f = List.fold_left (fun acc st -> acc + f st) 0 ics in
  {
    name = label;
    iterations;
    peak_cycles = Support.Stats.mean window;
    peak_stddev = Support.Stats.stddev window;
    code_size = Engine.installed_code_size engine;
    compile_cycles = engine.compile_cycles;
    pending_methods = Engine.pending_methods engine;
    pending_code_size = Engine.pending_code_size engine;
    timeline =
      List.rev_map
        (fun (c : Engine.compilation) -> (meth_name c.cm, c.size, c.at_cycles))
        engine.compilations;
    invalidated =
      List.rev_map (fun (m, at) -> (meth_name m, at)) engine.invalidations;
    bailed_out =
      List.rev_map
        (fun (b : Engine.bailout) -> (meth_name b.bm, b.reason, b.at_cycles))
        engine.bailouts;
    blacklisted = List.map meth_name (Engine.bailout_stats engine).blacklisted_methods;
    output = Engine.output engine;
    ic_sites = List.length ics;
    ic_hits = sum (fun st -> st.Runtime.Interp.st_hits);
    ic_misses = sum (fun st -> st.Runtime.Interp.st_misses);
    ic_megamorphic = sum (fun st -> st.Runtime.Interp.st_mega);
    dispatch = Engine.dispatch_label engine;
    superinst = Engine.superinst_stats engine;
  }

(* The compile-timeline section of a BENCH_*.json result: when code was
   installed, how big it was, and what is still in flight. *)
let timeline_json (r : run) : Support.Json.t =
  Support.Json.Obj
    [
      ( "installs",
        Support.Json.List
          (List.map
             (fun (meth, size, at) ->
               Support.Json.Obj
                 [
                   ("meth", Support.Json.String meth);
                   ("size", Support.Json.Int size);
                   ("at_cycles", Support.Json.Int at);
                 ])
             r.timeline) );
      ( "invalidations",
        Support.Json.List
          (List.map
             (fun (meth, at) ->
               Support.Json.Obj
                 [
                   ("meth", Support.Json.String meth);
                   ("at_cycles", Support.Json.Int at);
                 ])
             r.invalidated) );
      ( "bailouts",
        Support.Json.List
          (List.map
             (fun (meth, reason, at) ->
               Support.Json.Obj
                 [
                   ("meth", Support.Json.String meth);
                   ("reason", Support.Json.String reason);
                   ("at_cycles", Support.Json.Int at);
                 ])
             r.bailed_out) );
      ( "blacklisted",
        Support.Json.List (List.map (fun m -> Support.Json.String m) r.blacklisted) );
      ("code_size", Support.Json.Int r.code_size);
      ("compile_cycles", Support.Json.Int r.compile_cycles);
      ("pending_methods", Support.Json.Int r.pending_methods);
      ("pending_code_size", Support.Json.Int r.pending_code_size);
    ]

(* Inline-cache totals of a run. A run without virtual dispatches
   reports hit_rate null, not 0.0 — there was nothing to hit. *)
let ic_json (r : run) : Support.Json.t =
  Support.Json.Obj
    [
      ("sites", Support.Json.Int r.ic_sites);
      ("hits", Support.Json.Int r.ic_hits);
      ("misses", Support.Json.Int r.ic_misses);
      ("megamorphic", Support.Json.Int r.ic_megamorphic);
      ( "hit_rate",
        match ic_hit_rate_opt r with
        | Some rate -> Support.Json.Float rate
        | None -> Support.Json.Null );
    ]

(* The mined superinstruction table of a run: which op sequences were
   fused, at how many sites, over how much block hotness. *)
let superinst_json (r : run) : Support.Json.t =
  Support.Json.Obj
    [
      ("patterns", Support.Json.Int (List.length r.superinst));
      ( "fused_sites",
        Support.Json.Int
          (List.fold_left (fun a (s : Runtime.Interp.sstat) -> a + s.ss_sites) 0
             r.superinst) );
      ( "fused_weight",
        Support.Json.Int
          (List.fold_left (fun a (s : Runtime.Interp.sstat) -> a + s.ss_weight) 0
             r.superinst) );
      ( "table",
        Support.Json.List
          (List.map
             (fun (s : Runtime.Interp.sstat) ->
               Support.Json.Obj
                 [
                   ("pattern", Support.Json.String s.ss_pattern);
                   ("sites", Support.Json.Int s.ss_sites);
                   ("weight", Support.Json.Int s.ss_weight);
                 ])
             r.superinst) );
    ]

(* The complete run as JSON — the shared emitter behind `selvm bench
   --json` and the bench smoke's per-run sections. *)
let run_json (r : run) : Support.Json.t =
  Support.Json.Obj
    [
      ("name", Support.Json.String r.name);
      ("iterations", Support.Json.Int (List.length r.iterations));
      ("peak_cycles", Support.Json.Float r.peak_cycles);
      ("peak_stddev", Support.Json.Float r.peak_stddev);
      ( "per_iteration",
        Support.Json.List
          (List.map
             (fun (it : iteration) ->
               Support.Json.Obj
                 [
                   ("index", Support.Json.Int it.index);
                   ("cycles", Support.Json.Int it.cycles);
                   ("compiled_methods", Support.Json.Int it.compiled_methods);
                 ])
             r.iterations) );
      ("dispatch", Support.Json.String r.dispatch);
      ("ic", ic_json r);
      ("superinst", superinst_json r);
      ("timeline", timeline_json r);
    ]
