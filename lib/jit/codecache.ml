(* Bounded code cache residency: see the interface for the policy.

   A resident set is at most a few dozen entries, so a plain list with
   linear victim scans is enough — and trivially deterministic. [seq]
   numbers installs and breaks retention ties oldest-install-first. *)

open Support

type 'k entry = {
  ce_meth : 'k;
  ce_size : int;
  ce_seq : int;
  mutable ce_last : int;  (* last-use time, caller's clock *)
  mutable ce_uses : int;
}

type 'k t = {
  cap : int;
  mutable entries : 'k entry list;
  mutable next_seq : int;
  mutable total : int;  (* sum of resident ce_size *)
}

let create ~capacity = { cap = max 0 capacity; entries = []; next_seq = 0; total = 0 }

let capacity t = t.cap
let used t = t.total
let resident t = List.length t.entries
let mem t meth = List.exists (fun e -> e.ce_meth = meth) t.entries

let retain_score ~last_used ~uses ~size =
  Sat.sub (Sat.add last_used (Sat.mul 64 uses)) size

let score_of e = retain_score ~last_used:e.ce_last ~uses:e.ce_uses ~size:e.ce_size

let drop t e =
  t.entries <- List.filter (fun e' -> e' != e) t.entries;
  t.total <- t.total - e.ce_size

let remove t meth =
  match List.find_opt (fun e -> e.ce_meth = meth) t.entries with
  | Some e -> drop t e
  | None -> ()

let install t ~meth ~size ~now =
  remove t meth;
  let e =
    { ce_meth = meth; ce_size = max 0 size; ce_seq = t.next_seq;
      ce_last = now; ce_uses = 0 }
  in
  t.next_seq <- t.next_seq + 1;
  t.entries <- e :: t.entries;
  t.total <- t.total + e.ce_size;
  let victims = ref [] in
  while t.total > t.cap do
    match t.entries with
    | [] -> t.total <- 0 (* unreachable: total > cap >= 0 implies an entry *)
    | e0 :: rest ->
        let victim =
          List.fold_left
            (fun best e' ->
              let sb = score_of best and se = score_of e' in
              if se < sb || (se = sb && e'.ce_seq < best.ce_seq) then e' else best)
            e0 rest
        in
        drop t victim;
        victims := victim.ce_meth :: !victims
  done;
  List.rev !victims

let touch t meth ~now =
  match List.find_opt (fun e -> e.ce_meth = meth) t.entries with
  | Some e ->
      e.ce_last <- now;
      e.ce_uses <- e.ce_uses + 1
  | None -> ()
