(** The tiered execution engine: interpret, detect hotness, compile,
    install — the paper's online compilation-request environment. Compiled
    bodies are produced by a pluggable {!compiler} (the incremental
    inliner, a baseline, or nothing) and installed in a code cache the
    interpreter consults at every method entry. Compilation is synchronous
    but its simulated cost is metered on a separate clock. *)

open Ir.Types

type compiler = program -> Runtime.Profile.t -> meth_id -> fn
(** Maps a hot method to the optimized body to install. Must not mutate
    the program's method bodies. *)

type config = {
  name : string;
  compiler : compiler option;   (** [None]: pure interpreter *)
  hotness_threshold : int;      (** invocations before compilation *)
  compile_cost_per_node : int;  (** simulated compile cycles per output IR node *)
  verify : bool;                (** verify every produced body (tests) *)
}

val interpreter_config : config

type compilation = { cm : meth_id; size : int; at_cycles : int }

type bailout = {
  bm : meth_id;
  reason : string;
  at_cycles : int;
  failures : int;     (** the method's failure count, including this one *)
  charged : int;      (** compile cycles the dead attempt burned *)
  blacklisted : bool; (** this failure hit the cap: permanently interpreted *)
}
(** One contained compilation failure: the compiler or verifier threw
    instead of producing an installable body; the method kept
    interpreting. *)

type bailout_stats = {
  failed_attempts : int;  (** bailouts recorded over the run *)
  failed_methods : int;   (** distinct methods with at least one failure *)
  blacklisted_methods : meth_id list;  (** ascending *)
}

val containable : exn -> bool
(** Which exceptions a compiler invocation may fail with and be contained
    (all but host-process conditions: [Out_of_memory], [Sys.Break]). *)

val backoff_cooldown : hotness:int -> failures:int -> int
(** Exponential-backoff retry distance after [failures] failed compile
    attempts: [hotness * 2^(failures-1)], saturating at a large positive
    value instead of overflowing to a negative one (which would un-gate
    recompilation of a method that should be backing off). *)

type osr_origin = { od_src : meth_id; od_bid : bid; od_depth : int }
(** Provenance of a synthetic OSR continuation: source method, the loop
    header it was extracted at, and its extraction generation (capped so
    invalidate/re-enter cycles cannot mint methods forever). *)

type t = {
  vm : Runtime.Interp.vm;
  config : config;
  code_cache : (meth_id, fn) Hashtbl.t;
  mutable compiling : bool;
  mutable compile_cycles : int;
  mutable compilations : compilation list;  (** most recent first *)
  async_compile : bool;
  pending : (meth_id, fn * int) Hashtbl.t;
  (** compiled but not yet installed (body, ready-at cycles) *)
  spec_miss_threshold : int;
  max_recompiles : int;
  miss_counts : (meth_id, int ref) Hashtbl.t;
  recompile_counts : (meth_id, int) Hashtbl.t;
  cooldown : (meth_id, int) Hashtbl.t;
  mutable invalidations : (meth_id * int) list;  (** method, at_cycles *)
  mutable bailouts : bailout list;
  (** contained compile failures, most recent first; see {!containable} *)
  max_compile_failures : int;
  failure_counts : (meth_id, int) Hashtbl.t;
  blacklist : (meth_id, unit) Hashtbl.t;
  (** methods permanently retired to the interpreter after
      [max_compile_failures] failed compilation attempts *)
  compile_fuel : int option;
  (** per-compilation watchdog budget in {!Support.Fuel} checkpoints *)
  mutable install_pending : meth_id -> fn -> unit;
  (** installs a pending body through the normal install path; wired by
      {!create} when a compiler is configured, used by {!flush_pending} *)
  osr : bool;
  (** loop-entry OSR armed (a compiler is configured and the kill switch
      was not thrown) *)
  osr_threshold : int;
  (** block (≈ backedge) count that makes a loop hot — triggers both the
      mid-invocation OSR transfer and the [on_entry] promotion of
      single-invocation hot-loop methods. Finite even with [osr] off. *)
  osr_sites : (meth_id * bid, Runtime.Interp.osr_transfer) Hashtbl.t;
  (** (source method, header) -> registered enter transfer *)
  osr_meta : (meth_id, osr_origin) Hashtbl.t;
  (** synthetic continuation -> provenance *)
  osr_no : (meth_id * bid, unit) Hashtbl.t;  (** memoized refusals *)
  osr_cooldown : (meth_id * bid, int) Hashtbl.t;
  (** block count gating the next enter/compile attempt at a site *)
  loop_cache : (meth_id, (fn * Ir.Loops.t) list) Hashtbl.t;
  (** loop forests per method, matched by physical body *)
  exit_conts : (meth_id * bid, (fn * Runtime.Interp.osr_transfer option) list) Hashtbl.t;
  (** exit continuations per (method, header), keyed by the physical
      stale body; [None] memoizes "not extractable, keep running" *)
  mutable osr_uid : int;
  mutable osr_enters : int;  (** OSR transfers taken (enter direction) *)
  mutable osr_exits : int;   (** OSR exits (invalidation transfers + trap unwinds) *)
  serve_queue : meth_id Scheduler.t option;
  (** bounded background-compile queue; [None] (default): hot methods
      compile inline at the trigger, exactly the pre-serve engine *)
  serve_cache : meth_id Codecache.t option;
  (** bounded code-cache residency; [None] (default): unbounded *)
  compile_deadline : int option;
  (** per-compile deadline in {!Support.Fuel} checkpoints; [min]s with
      [compile_fuel] at every attempt *)
  mutable evictions : (meth_id * int) list;
  (** cache evictions (method, at_cycles), most recent first *)
  evict_counts : (meth_id, int) Hashtbl.t;
  (** evictions per method — drives the re-hot backoff gate *)
  mutable sheds : int;
  (** compile requests shed by admission control *)
  mutable queue_waits : int list;
  (** queue waits of serviced requests, most recent first *)
  first_hot : (meth_id, int) Hashtbl.t;
  (** first hot-trigger time per method, at [vm.cycles] *)
  mutable ttp : (meth_id * int) list;
  (** time-to-peak per method: cycles from first hot-trigger to first
      install (includes queue wait and async compile latency) *)
  mutable timeline : timeline option;
  (** time-series sampling ({!attach_timeline}); [None] (default) costs
      one match per method entry *)
}

and timeline = {
  tl_sink : Obs.Timeline.t;
  tl_source : string;  (** tenant id, or a run label *)
  tl_monitor : Obs.Slo.monitor option;
  mutable tl_due : int;  (** next sample at [vm.cycles >= tl_due] *)
}

val create :
  ?cost:Runtime.Cost.t -> ?spec_miss_threshold:int -> ?max_recompiles:int ->
  ?async_compile:bool -> ?max_compile_failures:int -> ?compile_fuel:int ->
  ?osr:bool -> ?osr_threshold:int -> ?queue_capacity:int ->
  ?queue_age_unit:int -> ?cache_capacity:int -> ?compile_deadline:int ->
  program -> config -> t
(** Also runs {!Opt.Driver.prepare_program} so profiles are collected
    against prepared IR.

    Failure handling: an exception escaping the compiler or verifier (any
    {!containable} one) is a bailout — the method keeps interpreting, the
    compile cycles already spent are charged, and retries back off
    exponentially (the cooldown gate doubles per failure). After
    [max_compile_failures] (default 3) failures the method is blacklisted:
    permanently interpreted, never re-entering compilation. [compile_fuel]
    installs a {!Support.Fuel} watchdog budget around every compilation;
    exhaustion mid-compile returns the inliner's best completed round, or
    fails the attempt (feeding the same backoff path) when not even one
    round finished. When a {!Support.Chaos} plan is ambient, the engine
    additionally injects deterministic compiler crashes, verifier rejects,
    starved fuel budgets and invalidation storms at these same points.

    Speculation management (off unless [spec_miss_threshold] is given):
    when a compiled method's typeswitch fallback executes that many times —
    a receiver distribution the speculation never saw, e.g. after a phase
    shift — the method's code is invalidated, the interpreter re-profiles
    it for [hotness_threshold] further invocations, and it recompiles
    against the new profile, at most [max_recompiles] times per method.

    [async_compile] (default false) models a background compiler thread
    (the paper's Section II.2 "compilation impact"): produced code installs
    only once its simulated compile latency (size × [compile_cost_per_node])
    has elapsed on the execution clock; the method keeps interpreting — and
    profiling — in the meantime.

    On-stack replacement ([osr], default true; only meaningful with a
    compiler): when an interpreted frame's block counter crosses
    [osr_threshold] (default [hotness_threshold * 64]) at a loop header,
    the engine extracts the loop continuation ({!Ir.Osr}), compiles it
    through the normal pipeline and transfers the frame into it
    mid-invocation; invalidations bump a deopt epoch that makes running
    compiled frames OSR-exit into interpreted continuations at their next
    loop header. Program outputs are bit-identical with OSR on, off, and
    under the reference interpreter. [osr:false] is the kill switch: no
    checkpoints fire and no epoch moves, but the backedge-driven
    [on_entry] trigger (a bugfix, not a speculation) stays active.

    Serving ([queue_capacity] / [cache_capacity] / [compile_deadline],
    all off by default and only meaningful with a compiler): with
    [queue_capacity] set, hot methods enqueue a prioritized compile
    request ({!Scheduler}: hotness × queue-age score, saturating) instead
    of compiling inline; the one simulated background compiler services
    the highest-score request at method entries, and admission control
    sheds the lowest-score request when the queue is full. With
    [cache_capacity] set (IR nodes), installed code is bounded
    ({!Codecache}): installs evict lowest-retention residents, which fall
    back to the prepared tier through the same deopt-epoch path as
    invalidations — without consuming [max_recompiles]; instead an
    evicted method's recompilation backs off per eviction. A
    [compile_deadline] caps every attempt with a {!Support.Fuel} budget;
    misses are ordinary bailouts. All serving decisions are functions of
    this engine's own state, so a tenant behaves byte-identically solo or
    multiplexed by {!Serve}.

    Synthetic OSR/deopt continuations inherit their parent method's
    failure count and blacklist entry at extraction time — a method that
    exhausted its compile-failure budget cannot keep burning compile
    cycles through fresh continuations. *)

val run_main : t -> Runtime.Values.value
val run_meth : t -> string -> Runtime.Values.value list -> Runtime.Values.value
val output : t -> string

val installed_code_size : t -> int
(** Total size of installed bodies — the Figure 10 / Table I metric. *)

val installed_methods : t -> int

val ic_stats : t -> Runtime.Interp.ic_stat list
(** Per-site inline-cache statistics, live caches merged with counters
    retired by installs/invalidations (see {!Runtime.Interp.ic_stats}). *)

val superinst_stats : t -> Runtime.Interp.sstat list
(** The threaded tier's mined superinstruction table, sorted by pattern
    (see {!Runtime.Interp.superinst_stats}). Empty under the other
    backends or before any method crossed the fusion threshold. *)

val dispatch_label : t -> string
(** How the interpreted tier dispatches: ["threaded"], ["match"]
    (prepared) or ["walker"] (reference). *)

val pending_methods : t -> int
(** Compilations produced but not yet installed (async mode). *)

val pending_code_size : t -> int
(** Total size of produced-but-pending bodies — code the compiler paid
    for that {!installed_code_size} cannot see yet. *)

val flush_pending : ?force:bool -> t -> int
(** Installs every pending compilation whose simulated latency has
    elapsed (all of them with [force]), in ascending method order, and
    returns how many installed. The benchmark harness calls this at end
    of run so the code-size metric includes async compilations whose
    method was never re-entered after the latency elapsed. *)

val compiled_body : t -> string -> fn option

val blacklisted : t -> meth_id -> bool

val snapshot_metrics : t -> unit
(** Publishes end-of-run state into {!Obs.Metrics} gauges (installed code
    size and method count, compile cycles, VM cycles/steps, aggregate IC
    counters, the mined superinstruction table as [superinst.*] gauges,
    the registered OSR continuation count as [osr.methods])
    and the per-site IC hit-rate histogram. Event-shaped
    counters (compiles, installs, invalidations, bailouts, osr
    enters/exits, …) accrue live; this snapshot covers the point-in-time
    values only. A no-op while metrics are disabled. *)

val bailout_stats : t -> bailout_stats
(** Aggregate failure picture of the run: how many compilation attempts
    bailed out, over how many methods, and which methods are permanently
    blacklisted to the interpreter. *)

type serve_stats = {
  sv_sheds : int;            (** requests shed by admission control *)
  sv_evictions : int;        (** cache evictions over the run *)
  sv_queue_depth : int;      (** requests still waiting at end of run *)
  sv_cache_used : int;       (** resident code size (installed size when unbounded) *)
  sv_cache_resident : int;   (** resident methods (installed count when unbounded) *)
  sv_queue_waits : int list; (** serviced requests' queue waits, ascending *)
  sv_ttp : int list;         (** per-method time-to-peak, ascending *)
}

val serve_stats : t -> serve_stats
(** End-of-run serving picture. The two latency lists are sorted
    ascending so exact percentile extraction is an index. Meaningful
    with serving off too (zero churn, empty waits, inline-trigger
    time-to-peak). *)

val timeline_fields : t -> (string * Support.Json.t) list
(** The flat gauge snapshot a timeline sample carries: tier residency
    ([compiled]/[pending]/[blacklisted], [code_size]), compile/deopt/OSR
    churn ([compiles], [invalidations], [bailouts], [osr_enters],
    [osr_exits]) and serving pressure ([queue_depth], [cache_used],
    [cache_resident], [sheds], [evictions], [evict_max] — the highest
    per-method eviction count, which the cache-thrash SLO keys on).
    Documented in docs/OBSERVABILITY.md. *)

val sample_timeline : ?force:bool -> t -> unit
(** Emits a sample if one is due on this engine's clock ([force]
    bypasses the cadence — callers use it for a final end-of-run row).
    Feeds the attached {!Obs.Slo} monitor, emitting each rising-edge
    firing as a structured [slo_violation] trace event. A single [None]
    match when no timeline is attached. *)

val attach_timeline :
  ?monitor:Obs.Slo.monitor -> t -> source:string -> Obs.Timeline.t -> unit
(** Arms sampling on this engine: a baseline row at the next method
    entry, then one every [Obs.Timeline.interval] simulated cycles.
    Sampling only reads engine state — arming it cannot change program
    behavior, clocks, or chaos streams. *)
