(** The tiered execution engine: interpret, detect hotness, compile,
    install — the paper's online compilation-request environment. Compiled
    bodies are produced by a pluggable {!compiler} (the incremental
    inliner, a baseline, or nothing) and installed in a code cache the
    interpreter consults at every method entry. Compilation is synchronous
    but its simulated cost is metered on a separate clock. *)

open Ir.Types

type compiler = program -> Runtime.Profile.t -> meth_id -> fn
(** Maps a hot method to the optimized body to install. Must not mutate
    the program's method bodies. *)

type config = {
  name : string;
  compiler : compiler option;   (** [None]: pure interpreter *)
  hotness_threshold : int;      (** invocations before compilation *)
  compile_cost_per_node : int;  (** simulated compile cycles per output IR node *)
  verify : bool;                (** verify every produced body (tests) *)
}

val interpreter_config : config

type compilation = { cm : meth_id; size : int; at_cycles : int }

type bailout = { bm : meth_id; reason : string; at_cycles : int }
(** One contained compilation failure: the compiler or verifier threw
    instead of producing an installable body; the method kept
    interpreting. *)

val containable : exn -> bool
(** Which exceptions a compiler invocation may fail with and be contained
    (all but host-process conditions: [Out_of_memory], [Sys.Break]). *)

type t = {
  vm : Runtime.Interp.vm;
  config : config;
  code_cache : (meth_id, fn) Hashtbl.t;
  mutable compiling : bool;
  mutable compile_cycles : int;
  mutable compilations : compilation list;  (** most recent first *)
  async_compile : bool;
  pending : (meth_id, fn * int) Hashtbl.t;
  (** compiled but not yet installed (body, ready-at cycles) *)
  spec_miss_threshold : int;
  max_recompiles : int;
  miss_counts : (meth_id, int ref) Hashtbl.t;
  recompile_counts : (meth_id, int) Hashtbl.t;
  cooldown : (meth_id, int) Hashtbl.t;
  mutable invalidations : (meth_id * int) list;  (** method, at_cycles *)
  mutable bailouts : bailout list;
  (** contained compile failures, most recent first; see {!containable} *)
  mutable install_pending : meth_id -> fn -> unit;
  (** installs a pending body through the normal install path; wired by
      {!create} when a compiler is configured, used by {!flush_pending} *)
}

val create :
  ?cost:Runtime.Cost.t -> ?spec_miss_threshold:int -> ?max_recompiles:int ->
  ?async_compile:bool -> program -> config -> t
(** Also runs {!Opt.Driver.prepare_program} so profiles are collected
    against prepared IR.

    Speculation management (off unless [spec_miss_threshold] is given):
    when a compiled method's typeswitch fallback executes that many times —
    a receiver distribution the speculation never saw, e.g. after a phase
    shift — the method's code is invalidated, the interpreter re-profiles
    it for [hotness_threshold] further invocations, and it recompiles
    against the new profile, at most [max_recompiles] times per method.

    [async_compile] (default false) models a background compiler thread
    (the paper's Section II.2 "compilation impact"): produced code installs
    only once its simulated compile latency (size × [compile_cost_per_node])
    has elapsed on the execution clock; the method keeps interpreting — and
    profiling — in the meantime. *)

val run_main : t -> Runtime.Values.value
val run_meth : t -> string -> Runtime.Values.value list -> Runtime.Values.value
val output : t -> string

val installed_code_size : t -> int
(** Total size of installed bodies — the Figure 10 / Table I metric. *)

val installed_methods : t -> int

val ic_stats : t -> Runtime.Interp.ic_stat list
(** Per-site inline-cache statistics, live caches merged with counters
    retired by installs/invalidations (see {!Runtime.Interp.ic_stats}). *)

val pending_methods : t -> int
(** Compilations produced but not yet installed (async mode). *)

val pending_code_size : t -> int
(** Total size of produced-but-pending bodies — code the compiler paid
    for that {!installed_code_size} cannot see yet. *)

val flush_pending : ?force:bool -> t -> int
(** Installs every pending compilation whose simulated latency has
    elapsed (all of them with [force]), in ascending method order, and
    returns how many installed. The benchmark harness calls this at end
    of run so the code-size metric includes async compilations whose
    method was never re-entered after the latency elapsed. *)

val compiled_body : t -> string -> fn option
