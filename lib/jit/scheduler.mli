(** Bounded, prioritized background-compile queue with admission control.

    Models the one background compiler thread a serving engine gets: hot
    methods enqueue a compile request instead of compiling inline; the
    engine pumps the queue at method entries, servicing the highest-score
    request whenever the simulated compiler is idle, and the serviced
    compilation occupies the compiler for its simulated latency.

    Priority is [hotness × (1 + age/age_unit)] in saturating arithmetic
    ({!Support.Sat}): hot methods win now, and any admitted request's
    score grows without bound as it waits, so starvation is impossible —
    but a wrapped product would invert that guarantee, which is why raw
    [*]/[+] are banned here (the PR 7 overflow class).

    The queue is bounded: past [capacity] an incoming request is either
    rejected (it scores no higher than the cheapest waiting request) or
    displaces the lowest-score waiting request — in both cases somebody
    is shed, visibly, rather than the queue growing without bound.

    All decisions are pure functions of the arguments and prior calls on
    this queue — no ambient state, no wall clock — so a tenant driving
    its own queue behaves byte-identically solo or multiplexed. *)

type 'k t

val create : capacity:int -> age_unit:int -> 'k t
(** [capacity] is the maximum number of waiting requests (clamped to
    [>= 0]; capacity 0 sheds every request). [age_unit] is the wait (in
    the caller's clock units) that adds one [hotness] worth of priority
    (clamped to [>= 1]). *)

val capacity : 'k t -> int
val length : 'k t -> int

val score : hotness:int -> age:int -> age_unit:int -> int
(** [hotness × (1 + age/age_unit)], saturating at [max_int]; negative
    operands clamp to 0. Exposed for tests and for the shed diagnostics
    in trace events. *)

type 'k admission =
  | Admitted            (** queued; there was room *)
  | Bumped              (** already queued; hotness refreshed upward *)
  | Displaced of 'k     (** queued; the lowest-score request was shed *)
  | Rejected            (** shed on arrival: queue full and the incoming
                            request scores no higher than the cheapest
                            waiting one *)

val enqueue : 'k t -> meth:'k -> hotness:int -> now:int -> 'k admission
(** Offers a compile request. Ties on displacement keep the request that
    has waited longest (the incoming request loses a tie). *)

val mem : 'k t -> 'k -> bool
val remove : 'k t -> 'k -> unit
(** Drops a waiting request (blacklisted or invalidated methods). A
    no-op when absent. *)

val busy_until : 'k t -> int
(** The caller-clock time until which the background compiler is
    occupied by the last serviced request. Initially 0. *)

val occupy : 'k t -> until:int -> unit
(** Marks the compiler busy until [until] (monotone: never moves the
    horizon backward). The engine calls this after servicing a request —
    including OSR compiles, which bypass the queue but still occupy the
    one compiler. *)

val pop : 'k t -> now:int -> ('k * int) option
(** The highest-score waiting request if the compiler is idle
    ([now >= busy_until]) and the queue is nonempty; returns the method
    and its queue wait ([now - enqueued_at], clamped to [>= 0]). Ties
    pop the longest-waiting request. *)
