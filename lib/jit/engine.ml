(* The tiered execution engine: interpret, detect hotness, compile, install.

   This is the "stream of compilation requests" environment from the
   paper's online-inlining problem statement (Section II): methods start
   interpreted (collecting profiles); when a method's invocation count
   crosses the threshold it is handed to the configured [compiler] — the
   paper's algorithm, a baseline, or nothing — and the returned optimized
   body is installed in the code cache, where the interpreter picks it up
   at the next invocation.

   Compilation is synchronous but its simulated cost is metered on a
   separate clock ([compile_cycles]), mirroring a background compiler
   thread that does not stall the mutator. *)

open Ir.Types

(* A compiler maps a hot method to an optimized body to install. *)
type compiler = program -> Runtime.Profile.t -> meth_id -> fn

type config = {
  name : string;
  compiler : compiler option;      (* None: pure interpreter *)
  hotness_threshold : int;         (* invocations before compilation *)
  compile_cost_per_node : int;     (* simulated compile cycles per output IR node *)
  verify : bool;                   (* check produced IR (tests; off in benches) *)
}

let interpreter_config = {
  name = "interpreter";
  compiler = None;
  hotness_threshold = max_int;
  compile_cost_per_node = 0;
  verify = false;
}

type compilation = { cm : meth_id; size : int; at_cycles : int }

(* One contained compilation failure: the compiler (or the verifier)
   threw instead of producing an installable body. The run survives —
   the method keeps interpreting. [failures] is the method's failure
   count including this one; [charged] the compile cycles the dead
   attempt burned; [blacklisted] whether this failure hit the cap and
   permanently retired the method to the interpreter. *)
type bailout = {
  bm : meth_id;
  reason : string;
  at_cycles : int;
  failures : int;
  charged : int;
  blacklisted : bool;
}

(* Aggregate failure picture of a run, for summaries and the CLI. *)
type bailout_stats = {
  failed_attempts : int;       (* bailouts recorded *)
  failed_methods : int;        (* distinct methods with >= 1 failure *)
  blacklisted_methods : meth_id list;  (* ascending *)
}

(* Exceptions the engine refuses to contain: conditions of the host
   process, not of one compilation. Everything else — compiler bugs,
   verifier rejects, even a runaway inliner blowing the stack — must
   degrade to the interpreter, never abort the run. *)
let containable = function
  | Out_of_memory | Sys.Break -> false
  | _ -> true

(* Exponential-backoff retry distance after [failures] failed compile
   attempts: hotness * 2^(failures-1), saturating. The naive shift
   overflows once failures exceeds the word size — a negative cooldown
   un-gates recompilation of a method that should be backing off — so
   both the shift and the product clamp to a huge-but-positive value. *)
let backoff_cooldown ~(hotness : int) ~(failures : int) : int =
  if hotness <= 0 then 0
  else
    let shift = min (max 0 (failures - 1)) 40 in
    let mult = 1 lsl shift in
    if hotness > max_int / mult then max_int / 2 else hotness * mult

(* Engine instruments (registered once; recording is a no-op while
   [Obs.Metrics] is disabled, keeping the hot path clean). *)
let m_compiles = Obs.Metrics.counter "jit.compiles"
let m_installs = Obs.Metrics.counter "jit.installs"
let m_invalidations = Obs.Metrics.counter "jit.invalidations"
let m_bailouts = Obs.Metrics.counter "jit.compile_bailouts"
let m_blacklisted = Obs.Metrics.counter "jit.blacklisted"
let m_pending_installs = Obs.Metrics.counter "jit.pending_installs"
let m_compile_latency = Obs.Metrics.histogram "jit.compile_latency_cycles"
let m_osr_enters = Obs.Metrics.counter "osr.enters"
let m_osr_exits = Obs.Metrics.counter "osr.exits"
let m_enqueues = Obs.Metrics.counter "serve.enqueues"
let m_sheds = Obs.Metrics.counter "serve.sheds"
let m_evictions = Obs.Metrics.counter "serve.evictions"
let m_queue_wait = Obs.Metrics.histogram "serve.queue_wait_cycles"
let m_ttp = Obs.Metrics.histogram "serve.time_to_peak_cycles"

(* Where a synthetic OSR continuation came from: the source method, the
   loop header it was extracted at, and its extraction generation (an
   exit continuation of an enter continuation is depth 2, and so on —
   capped so invalidation/re-enter cycles cannot mint methods forever). *)
type osr_origin = { od_src : meth_id; od_bid : bid; od_depth : int }

type t = {
  vm : Runtime.Interp.vm;
  config : config;
  code_cache : (meth_id, fn) Hashtbl.t;
  mutable compiling : bool;
  mutable compile_cycles : int;
  mutable compilations : compilation list;  (* most recent first *)
  (* asynchronous-compilation model (paper, Section II.2 "compilation
     impact"): a hot method's code is produced when it crosses the
     threshold but installs only after its simulated compile latency has
     elapsed on the execution clock, as a background compiler thread
     would; until then the method keeps interpreting (and profiling) *)
  async_compile : bool;
  pending : (meth_id, fn * int (* ready at [vm.cycles] *)) Hashtbl.t;
  (* speculation management (deopt-lite): typeswitch fallbacks executed in
     compiled code count as misses; past the threshold the method's code
     is thrown away and it re-profiles before recompiling *)
  spec_miss_threshold : int;
  max_recompiles : int;
  miss_counts : (meth_id, int ref) Hashtbl.t;
  recompile_counts : (meth_id, int) Hashtbl.t;
  cooldown : (meth_id, int) Hashtbl.t;      (* invocation count gating recompilation *)
  mutable invalidations : (meth_id * int) list;  (* method, at_cycles *)
  mutable bailouts : bailout list;          (* contained compile failures, most recent first *)
  (* graceful-degradation machinery: a failed compile backs off
     exponentially (cooldown doubling per failure); at the cap the method
     is blacklisted — permanently interpreted, never retried, so a
     deterministic compiler bug costs a bounded number of compile cycles *)
  max_compile_failures : int;
  failure_counts : (meth_id, int) Hashtbl.t;
  blacklist : (meth_id, unit) Hashtbl.t;
  (* optional per-compilation watchdog budget (Support.Fuel checkpoints);
     None: unlimited *)
  compile_fuel : int option;
  (* installs a produced-but-pending body through the normal install path
     (code cache + prepared-code invalidation + accounting + telemetry);
     set when a compiler is configured, used by [flush_pending] *)
  mutable install_pending : meth_id -> fn -> unit;
  (* --- on-stack replacement (the long-running-loop path) --- *)
  osr : bool;                      (* enter/exit machinery armed *)
  osr_threshold : int;
  (* block (≈ backedge) count that makes a loop hot: OSR-enters an
     interpreted frame mid-invocation and, folded into [on_entry]'s
     trigger, promotes a single-invocation hot-loop method at its next
     call. Finite even when [osr] is off (the trigger fix stands alone). *)
  osr_sites : (meth_id * bid, Runtime.Interp.osr_transfer) Hashtbl.t;
  (* (source, header) -> registered enter transfer; one per site, ever *)
  osr_meta : (meth_id, osr_origin) Hashtbl.t;      (* synthetic -> origin *)
  osr_no : (meth_id * bid, unit) Hashtbl.t;        (* memoized refusals *)
  osr_cooldown : (meth_id * bid, int) Hashtbl.t;
  (* block count gating the next enter/compile attempt at a site *)
  loop_cache : (meth_id, (fn * Ir.Loops.t) list) Hashtbl.t;
  (* loop forests per method, matched by physical body (a method has at
     most a handful of live bodies: interpreted, installed, stale) *)
  exit_conts : (meth_id * bid, (fn * Runtime.Interp.osr_transfer option) list) Hashtbl.t;
  (* per (method, header): exit continuations keyed by the physical stale
     body; [None] memoizes "not extractable — keep running stale code" *)
  mutable osr_uid : int;           (* synthetic-name uniquifier *)
  mutable osr_enters : int;
  mutable osr_exits : int;
  (* --- serving: bounded background-compile queue + bounded code cache.
     Both off by default (absent, the engine is exactly the unbounded
     synchronous-trigger engine above); `selvm serve` arms them with
     per-tenant budgets. Every decision here is a function of this
     engine's own clocks and tables — never of ambient or fleet state —
     which is what makes a tenant's run byte-identical solo or
     multiplexed. *)
  serve_queue : meth_id Scheduler.t option;
  serve_cache : meth_id Codecache.t option;
  compile_deadline : int option;
  (* per-compile deadline in Support.Fuel checkpoints; min()s with
     [compile_fuel] at every attempt *)
  mutable evictions : (meth_id * int) list;  (* method, at_cycles; most recent first *)
  evict_counts : (meth_id, int) Hashtbl.t;
  (* evictions per method: drives the re-hot backoff, so a cache-thrashing
     method converges to the prepared tier instead of churning *)
  mutable sheds : int;             (* compile requests shed by admission control *)
  mutable queue_waits : int list;  (* serviced requests' waits, most recent first *)
  first_hot : (meth_id, int) Hashtbl.t;  (* first hot-trigger, at [vm.cycles] *)
  mutable ttp : (meth_id * int) list;
  (* time-to-peak per method: cycles from first hot-trigger to first
     install (includes queue wait and async latency) *)
  mutable timeline : timeline option;
  (* time-series sampling; [None] (default) costs one match per entry *)
}

and timeline = {
  tl_sink : Obs.Timeline.t;
  tl_source : string;            (* tenant id, or a run label *)
  tl_monitor : Obs.Slo.monitor option;
  mutable tl_due : int;          (* next sample at [vm.cycles >= tl_due] *)
}

(* A loop is OSR-hot well before this many header visits in one
   invocation would have crossed the invocation-hotness bar; 64 iterations
   per crossing keeps ordinary short loops promoting through the normal
   per-call trigger. *)
let default_osr_threshold (config : config) : int =
  if config.hotness_threshold > max_int / 64 then max_int
  else max 1 (config.hotness_threshold * 64)

(* The flat gauge snapshot a timeline sample carries: tier residency,
   compile/deopt/OSR churn, and the serving layer's queue and cache
   pressure. Field names are a public schema (docs/OBSERVABILITY.md) —
   the SLO detectors key on "invalidations", "sheds" and "evict_max". *)
let timeline_fields (t : t) : (string * Support.Json.t) list =
  let code_size =
    Hashtbl.fold (fun _ fn acc -> acc + Ir.Fn.size fn) t.code_cache 0
  in
  Support.Json.
    [
      ("steps", Int t.vm.steps);
      ("compiled", Int (Hashtbl.length t.code_cache));
      ("pending", Int (Hashtbl.length t.pending));
      ("blacklisted", Int (Hashtbl.length t.blacklist));
      ("code_size", Int code_size);
      ("compiles", Int (List.length t.compilations));
      ("compile_cycles", Int t.compile_cycles);
      ("invalidations", Int (List.length t.invalidations));
      ("bailouts", Int (List.length t.bailouts));
      ("osr_enters", Int t.osr_enters);
      ("osr_exits", Int t.osr_exits);
      ("sheds", Int t.sheds);
      ("evictions", Int (List.length t.evictions));
      ( "evict_max",
        Int (Hashtbl.fold (fun _ n acc -> max n acc) t.evict_counts 0) );
      ( "queue_depth",
        Int (match t.serve_queue with Some q -> Scheduler.length q | None -> 0)
      );
      ( "cache_used",
        Int
          (match t.serve_cache with
          | Some c -> Codecache.used c
          | None -> code_size) );
      ( "cache_resident",
        Int
          (match t.serve_cache with
          | Some c -> Codecache.resident c
          | None -> Hashtbl.length t.code_cache) );
    ]

(* The per-entry sampling check: one [None] match while no timeline is
   attached. When a sample is due, snapshot the gauges, stream the row,
   and run the SLO monitor over it — each rising-edge firing becomes a
   structured [slo_violation] trace event on the tenant's own clock. *)
let sample_timeline ?(force = false) (t : t) : unit =
  match t.timeline with
  | None -> ()
  | Some tl ->
      if force || t.vm.cycles >= tl.tl_due then begin
        let cycles = t.vm.cycles in
        let fields = timeline_fields t in
        Obs.Timeline.sample tl.tl_sink ~source:tl.tl_source ~cycles fields;
        (match tl.tl_monitor with
        | None -> ()
        | Some mon ->
            List.iter
              (fun v ->
                Obs.Trace.emit "slo_violation" (fun () ->
                    Obs.Slo.violation_fields v))
              (Obs.Slo.feed mon ~source:tl.tl_source ~cycles fields));
        tl.tl_due <- cycles + Obs.Timeline.interval tl.tl_sink
      end

(* Arms sampling; the first sample lands at the next method entry (a
   baseline row), then every [Obs.Timeline.interval] cycles. *)
let attach_timeline ?monitor (t : t) ~(source : string)
    (sink : Obs.Timeline.t) : unit =
  t.timeline <-
    Some
      { tl_sink = sink; tl_source = source; tl_monitor = monitor;
        tl_due = t.vm.cycles }

let create ?(cost = Runtime.Cost.default) ?(spec_miss_threshold = max_int)
    ?(max_recompiles = 2) ?(async_compile = false) ?(max_compile_failures = 3)
    ?compile_fuel ?(osr = true) ?osr_threshold ?queue_capacity
    ?(queue_age_unit = 1024) ?cache_capacity ?compile_deadline (prog : program)
    (config : config) : t =
  (* parse-time canonicalization: prepared bodies are what gets profiled,
     specialized and inlined (idempotent; safe if already prepared) *)
  Opt.Driver.prepare_program prog;
  let vm = Runtime.Interp.create ~cost prog in
  let osr_threshold =
    match osr_threshold with
    | Some n -> max 1 n
    | None -> default_osr_threshold config
  in
  let t =
    { vm; config; code_cache = Hashtbl.create 32; compiling = false;
      compile_cycles = 0; compilations = [];
      async_compile; pending = Hashtbl.create 8;
      spec_miss_threshold; max_recompiles;
      miss_counts = Hashtbl.create 8; recompile_counts = Hashtbl.create 8;
      cooldown = Hashtbl.create 8; invalidations = []; bailouts = [];
      max_compile_failures; failure_counts = Hashtbl.create 8;
      blacklist = Hashtbl.create 8; compile_fuel;
      install_pending = (fun _ _ -> ());
      osr = osr && config.compiler <> None && osr_threshold < max_int;
      osr_threshold;
      osr_sites = Hashtbl.create 8; osr_meta = Hashtbl.create 8;
      osr_no = Hashtbl.create 8; osr_cooldown = Hashtbl.create 8;
      loop_cache = Hashtbl.create 8; exit_conts = Hashtbl.create 8;
      osr_uid = 0; osr_enters = 0; osr_exits = 0;
      serve_queue =
        (match queue_capacity with
        | Some cap when config.compiler <> None ->
            Some (Scheduler.create ~capacity:cap ~age_unit:queue_age_unit)
        | _ -> None);
      serve_cache =
        (match cache_capacity with
        | Some cap when config.compiler <> None ->
            Some (Codecache.create ~capacity:cap)
        | _ -> None);
      compile_deadline;
      evictions = []; evict_counts = Hashtbl.create 8; sheds = 0;
      queue_waits = []; first_hot = Hashtbl.create 8; ttp = [];
      timeline = None }
  in
  vm.code <- (fun m -> Hashtbl.find_opt t.code_cache m);
  (* stamp the ambient trace sink (if any) with this engine's simulated
     clock; a no-op with tracing disabled *)
  Obs.Trace.set_clock (fun () -> vm.cycles);
  (match config.compiler with
  | None -> ()
  | Some compiler ->
      let meth_name m = (Ir.Program.meth prog m).m_name in
      (* bounded-cache retirement: drop a victim's installed code and send
         it back to the prepared tier through the same deopt-epoch path an
         invalidation takes. Unlike [invalidate] below this is capacity
         pressure, not a speculation failure — it consumes no
         [max_recompiles] budget; instead the victim's recompilation gate
         backs off per eviction, so a method the cache cannot hold
         converges to the prepared tier instead of churning forever. *)
      let evict v =
        let vsize =
          match Hashtbl.find_opt t.code_cache v with
          | Some fn -> Ir.Fn.size fn
          | None -> 0
        in
        Hashtbl.remove t.code_cache v;
        Runtime.Interp.invalidate_code vm v;
        (match Hashtbl.find_opt t.miss_counts v with Some r -> r := 0 | None -> ());
        let evicted =
          (match Hashtbl.find_opt t.evict_counts v with Some n -> n | None -> 0) + 1
        in
        Hashtbl.replace t.evict_counts v evicted;
        Hashtbl.replace t.cooldown v
          (Support.Sat.add
             (Runtime.Profile.invocation_count vm.profiles v)
             (backoff_cooldown ~hotness:config.hotness_threshold ~failures:evicted));
        t.evictions <- (v, vm.cycles) :: t.evictions;
        Obs.Metrics.incr m_evictions;
        Runtime.Interp.record_evict vm v;
        (* wake running compiled frames of the victim exactly as an
           invalidation would: they OSR-exit at their next loop header *)
        if t.osr then begin
          vm.deopt_epoch <- vm.deopt_epoch + 1;
          match Hashtbl.find_opt t.osr_meta v with
          | Some o ->
              Hashtbl.replace t.osr_cooldown (o.od_src, o.od_bid)
                (Support.Sat.add
                   (Runtime.Profile.block_count vm.profiles o.od_src o.od_bid)
                   t.osr_threshold)
          | None -> ()
        end;
        Obs.Trace.emit "evict" (fun () ->
            Support.Json.
              [
                ("m", Int v);
                ("meth", String (meth_name v));
                ("size", Int vsize);
                ("evicts", Int evicted);
              ])
      in
      let install m body size =
        Hashtbl.replace t.code_cache m body;
        (* the tier for this method changed: drop its prepared code *)
        Runtime.Interp.invalidate_code vm m;
        (* a fresh body starts with a clean speculation slate: misses
           recorded against the previous code version must not count
           toward the new body's invalidation threshold *)
        Hashtbl.remove t.miss_counts m;
        t.compilations <- { cm = m; size; at_cycles = vm.cycles } :: t.compilations;
        (* ramp accounting: cycles from the method's first hot-trigger to
           its first install (covers queue wait and async latency) *)
        (match Hashtbl.find_opt t.first_hot m with
        | Some hot_at when not (List.mem_assoc m t.ttp) ->
            let d = Support.Sat.sub vm.cycles hot_at in
            t.ttp <- (m, d) :: t.ttp;
            Obs.Metrics.observe m_ttp d
        | _ -> ());
        Obs.Metrics.incr m_installs;
        Obs.Trace.emit "install" (fun () ->
            Support.Json.
              [ ("m", Int m); ("meth", String (meth_name m)); ("size", Int size) ]);
        (* bounded cache: admit the fresh body, then retire whatever no
           longer fits (under a tiny budget that can be the fresh body
           itself — the install/evict pair keeps the trace honest) *)
        match t.serve_cache with
        | None -> ()
        | Some cache ->
            List.iter evict (Codecache.install cache ~meth:m ~size ~now:vm.cycles)
      in
      t.install_pending <- (fun m body -> install m body (Ir.Fn.size body));
      (* drop a method's installed code and send it back to the
         interpreter to re-profile; shared by the spec-miss path and the
         chaos invalidation storm *)
      let invalidate m ~misses ~recompiled =
        Hashtbl.remove t.code_cache m;
        (match t.serve_cache with
        | Some cache -> Codecache.remove cache m
        | None -> ());
        Runtime.Interp.invalidate_code vm m;
        Hashtbl.replace t.recompile_counts m (recompiled + 1);
        (match Hashtbl.find_opt t.miss_counts m with Some r -> r := 0 | None -> ());
        Hashtbl.replace t.cooldown m
          (Support.Sat.add
             (Runtime.Profile.invocation_count vm.profiles m)
             config.hotness_threshold);
        t.invalidations <- (m, vm.cycles) :: t.invalidations;
        Obs.Metrics.incr m_invalidations;
        Runtime.Interp.record_deopt vm m;
        (* OSR: wake running compiled frames of this method at their next
           loop header (they re-validate against the moved epoch and take
           the OSR-exit path); a synthetic continuation additionally backs
           its enter site off so the loop does not thrash re-entering *)
        if t.osr then begin
          vm.deopt_epoch <- vm.deopt_epoch + 1;
          match Hashtbl.find_opt t.osr_meta m with
          | Some o ->
              Hashtbl.replace t.osr_cooldown (o.od_src, o.od_bid)
                (Support.Sat.add
                   (Runtime.Profile.block_count vm.profiles o.od_src o.od_bid)
                   t.osr_threshold)
          | None -> ()
        end;
        Obs.Trace.emit "invalidate" (fun () ->
            Support.Json.
              [
                ("m", Int m);
                ("meth", String (meth_name m));
                ("misses", Int misses);
                ("recompiles", Int (recompiled + 1));
              ])
      in
      (* the compile pipeline, shared by the invocation-hotness trigger
         below and the OSR machinery (which compiles the extracted loop
         continuations through exactly the same chaos / fuel / bailout /
         blacklist path) *)
      let compile_now (m : meth_id) : unit =
          begin
            t.compiling <- true;
            Fun.protect
              ~finally:(fun () -> t.compiling <- false)
              (fun () ->
                Obs.Trace.emit "compile_start" (fun () ->
                    Support.Json.
                      [
                        ("m", Int m);
                        ("meth", String (meth_name m));
                        ( "invocations",
                          Int (Runtime.Profile.invocation_count vm.profiles m) );
                      ]);
                (* chaos: decide this attempt's injected faults up front —
                   a starved watchdog budget, a compiler crash before any
                   work, or a verifier reject of the finished body. All
                   three surface as contained exceptions on the bailout
                   path below. *)
                let inject fault =
                  Obs.Trace.emit "chaos" (fun () ->
                      Support.Json.
                        [
                          ("fault", String (Support.Chaos.fault_to_string fault));
                          ("m", Int m);
                          ("meth", String (meth_name m));
                        ]);
                  raise (Support.Chaos.Injected fault)
                in
                let fuel =
                  if Support.Chaos.(roll Fuel_exhaustion) then
                    Some (Support.Chaos.starved_fuel ())
                  else
                    (* the serve deadline caps every attempt; an explicit
                       fuel budget can only tighten it further. A deadline
                       miss is a normal bailout: charged, backed off,
                       eventually blacklisted. *)
                    match (t.compile_fuel, t.compile_deadline) with
                    | None, d -> d
                    | f, None -> f
                    | Some f, Some d -> Some (min f d)
                in
                let attempt () =
                  if Support.Chaos.(roll Compiler_crash) then
                    inject Support.Chaos.Compiler_crash;
                  let body = compiler prog vm.profiles m in
                  if Support.Chaos.(roll Verifier_reject) then
                    inject Support.Chaos.Verifier_reject;
                  if config.verify then Ir.Verify.check body;
                  body
                in
                match
                  match fuel with
                  | None -> attempt ()
                  | Some n -> Support.Fuel.with_budget n attempt
                with
                | exception e when containable e ->
                    (* the compilation died; the method stays interpreted
                       (and keeps profiling). Charge the cycles the dead
                       attempt burned, back off exponentially, and at the
                       failure cap blacklist the method so a deterministic
                       compiler bug stops consuming compile cycles. *)
                    let reason =
                      match e with
                      | Ir.Verify.Ill_formed msg -> "verify: " ^ msg
                      | Support.Fuel.Exhausted -> "fuel exhausted"
                      | Support.Chaos.Injected f ->
                          "chaos: " ^ Support.Chaos.fault_to_string f
                      | Failure msg -> msg
                      | e -> Printexc.to_string e
                    in
                    let input_size =
                      match (Ir.Program.meth prog m).body with
                      | Some fn -> Ir.Fn.size fn
                      | None -> 0
                    in
                    let charged = input_size * config.compile_cost_per_node in
                    t.compile_cycles <- t.compile_cycles + charged;
                    let failures =
                      (match Hashtbl.find_opt t.failure_counts m with
                      | Some n -> n
                      | None -> 0)
                      + 1
                    in
                    Hashtbl.replace t.failure_counts m failures;
                    let blacklisted = failures >= t.max_compile_failures in
                    if blacklisted then Hashtbl.replace t.blacklist m ()
                    else
                      (* exponential backoff: the retry gate doubles with
                         every failure, measured in invocations past the
                         current count (saturating — see
                         [backoff_cooldown]) *)
                      Hashtbl.replace t.cooldown m
                        (Support.Sat.add
                           (Runtime.Profile.invocation_count vm.profiles m)
                           (backoff_cooldown ~hotness:config.hotness_threshold
                              ~failures));
                    t.bailouts <-
                      { bm = m; reason; at_cycles = vm.cycles; failures; charged;
                        blacklisted }
                      :: t.bailouts;
                    Obs.Metrics.incr m_bailouts;
                    if blacklisted then Obs.Metrics.incr m_blacklisted;
                    Obs.Trace.emit "compile_bailout" (fun () ->
                        Support.Json.
                          [
                            ("m", Int m);
                            ("meth", String (meth_name m));
                            ("reason", String reason);
                            ("failures", Int failures);
                            ("charged", Int charged);
                            ("blacklisted", Bool blacklisted);
                          ])
                | body ->
                let size = Ir.Fn.size body in
                let latency = size * config.compile_cost_per_node in
                t.compile_cycles <- t.compile_cycles + latency;
                Obs.Metrics.incr m_compiles;
                Obs.Metrics.observe m_compile_latency latency;
                Obs.Trace.emit "compile_done" (fun () ->
                    Support.Json.
                      [
                        ("m", Int m);
                        ("meth", String (meth_name m));
                        ("size", Int size);
                        ("latency", Int latency);
                        ("async", Bool t.async_compile);
                      ]);
                if t.async_compile then begin
                  let ready_at = Support.Sat.add vm.cycles latency in
                  Hashtbl.replace t.pending m (body, ready_at);
                  Obs.Metrics.incr m_pending_installs;
                  Obs.Trace.emit "pending_install" (fun () ->
                      Support.Json.
                        [
                          ("m", Int m);
                          ("meth", String (meth_name m));
                          ("size", Int size);
                          ("ready_at", Int ready_at);
                        ])
                end
                else install m body size)
          end
      in
      (* every serviced compilation occupies the one background compiler
         for the compile cycles it charged — OSR continuation compiles
         below bypass queue admission (the transfer decision is
         synchronous) but still occupy that compiler, so a loop promotion
         delays queued work exactly as it would on a real thread *)
      let compile_occupying m =
        let before = t.compile_cycles in
        compile_now m;
        match t.serve_queue with
        | Some q ->
            Scheduler.occupy q
              ~until:(Support.Sat.add vm.cycles (t.compile_cycles - before))
        | None -> ()
      in
      (* ---------- on-stack replacement ---------- *)
      let open Runtime.Interp in
      let max_osr_depth = 3 in
      (* loop forests per (method, physical body): a method has at most a
         handful of live bodies (interpreted, installed, stale) *)
      let loops_for (m : meth_id) (body : fn) : Ir.Loops.t =
        let cached = try Hashtbl.find t.loop_cache m with Not_found -> [] in
        match List.find_opt (fun (f, _) -> f == body) cached with
        | Some (_, li) -> li
        | None ->
            let li = Ir.Loops.compute body in
            Hashtbl.replace t.loop_cache m
              ((body, li) :: List.filteri (fun i _ -> i < 3) cached);
            li
      in
      (* registers an extracted continuation as a first-class method of
         the program — compiled, profiled, invalidated and blacklisted by
         the very same machinery as source methods — and seeds its block
         profile from the source's, so the inliner sees the loop as hot
         as it really is *)
      let register_extraction ~(src_m : meth_id) ~(header : bid)
          ~(depth : int) ~(kind : string) (x : Ir.Osr.extraction) :
          meth_id * osr_transfer =
        t.osr_uid <- t.osr_uid + 1;
        let name =
          Printf.sprintf "%s@%s%d.b%d" (meth_name src_m) kind t.osr_uid header
        in
        let om =
          Ir.Program.add_meth prog ~name ~selector:name ~owner:None
            ~param_tys:x.Ir.Osr.x_fn.param_tys ~rty:x.Ir.Osr.x_fn.rty
        in
        Ir.Program.set_body prog om x.Ir.Osr.x_fn;
        Ir.Fn.iter_blocks
          (fun b ->
            let n = Runtime.Profile.block_count vm.profiles src_m b.b_id in
            if n > 0 then begin
              let c = Runtime.Profile.block_cell vm.profiles om b.b_id in
              c := !c + n
            end)
          x.Ir.Osr.x_fn;
        Hashtbl.replace t.osr_meta om
          { od_src = src_m; od_bid = header; od_depth = depth };
        (* the continuation inherits its parent's failure budget: a method
           that is backing off or blacklisted must not get a fresh budget
           by way of extraction — before this, a blacklisted method could
           keep burning compile fuel through its synthetic continuations *)
        (match Hashtbl.find_opt t.failure_counts src_m with
        | Some n -> Hashtbl.replace t.failure_counts om n
        | None -> ());
        if Hashtbl.mem t.blacklist src_m then Hashtbl.replace t.blacklist om ();
        ( om,
          { osr_target = om;
            osr_live_ins = x.Ir.Osr.x_live_ins;
            osr_phis = x.Ir.Osr.x_phis } )
      in
      let refuse key =
        Hashtbl.replace t.osr_no key ();
        Osr_no
      in
      let below_cooldown key m b =
        match Hashtbl.find_opt t.osr_cooldown key with
        | Some gate -> Runtime.Profile.block_count vm.profiles m b < gate
        | None -> false
      in
      (* a failed continuation compile backs the site off in block counts,
         doubling with the continuation's failure count *)
      let arm_cooldown key m b om =
        let failures =
          match Hashtbl.find_opt t.failure_counts om with Some n -> n | None -> 1
        in
        Hashtbl.replace t.osr_cooldown key
          (Support.Sat.add
             (Runtime.Profile.block_count vm.profiles m b)
             (backoff_cooldown ~hotness:t.osr_threshold ~failures))
      in
      let enter (m, b) (tr : osr_transfer) =
        let om = tr.osr_target in
        t.osr_enters <- t.osr_enters + 1;
        Obs.Metrics.incr m_osr_enters;
        Obs.Trace.emit "osr_enter" (fun () ->
            Support.Json.
              [
                ("m", Int m);
                ("meth", String (meth_name m));
                ("header", Int b);
                ("count", Int (Runtime.Profile.block_count vm.profiles m b));
                ("osr_m", Int om);
                ("osr_meth", String (meth_name om));
              ]);
        Osr_enter tr
      in
      (* an interpreted frame crossed [osr_threshold] at block [b] of
         method [m]: extract-and-compile the loop continuation (once per
         site), then hand the transfer back. Every refusal is memoized —
         backend checkpoints stop consulting us — and every failure
         degrades to Osr_wait/Osr_no: the frame simply keeps
         interpreting. *)
      let on_osr (m : meth_id) (b : bid) : osr_verdict =
        let key = (m, b) in
        if t.compiling then Osr_wait
        else if Hashtbl.mem t.osr_no key then Osr_no
        else
          match (Ir.Program.meth prog m).body with
          | None -> refuse key
          | Some body ->
              if not (Ir.Loops.is_header (loops_for m body) b) then refuse key
              else (
                match Hashtbl.find_opt t.osr_sites key with
                | Some tr ->
                    let om = tr.osr_target in
                    (* async: a continuation produced earlier installs
                       once its simulated latency elapsed *)
                    (match Hashtbl.find_opt t.pending om with
                    | Some (obody, ready_at) when vm.cycles >= ready_at ->
                        Hashtbl.remove t.pending om;
                        install om obody (Ir.Fn.size obody)
                    | _ -> ());
                    if Hashtbl.mem t.code_cache om then enter key tr
                    else if Hashtbl.mem t.pending om then Osr_wait
                    else if Hashtbl.mem t.blacklist om then refuse key
                    else if
                      (match Hashtbl.find_opt t.recompile_counts om with
                      | Some n -> n
                      | None -> 0)
                      >= t.max_recompiles
                    then refuse key
                    else if below_cooldown key m b then Osr_wait
                    else begin
                      compile_occupying om;
                      if Hashtbl.mem t.code_cache om then enter key tr
                      else begin
                        arm_cooldown key m b om;
                        Osr_wait
                      end
                    end
                | None ->
                    let depth =
                      match Hashtbl.find_opt t.osr_meta m with
                      | Some o -> o.od_depth
                      | None -> 0
                    in
                    if depth >= max_osr_depth then refuse key
                    else if below_cooldown key m b then Osr_wait
                    else (
                      match
                        let x = Ir.Osr.extract_loop body ~header:b in
                        Ir.Verify.check x.Ir.Osr.x_fn;
                        x
                      with
                      | exception e when containable e -> refuse key
                      | x ->
                          let om, tr =
                            register_extraction ~src_m:m ~header:b
                              ~depth:(depth + 1) ~kind:"osr" x
                          in
                          Hashtbl.replace t.osr_sites key tr;
                          (* the inherited budget can already be spent:
                             a blacklisted parent's continuation never
                             compiles at all *)
                          if Hashtbl.mem t.blacklist om then refuse key
                          else begin
                            compile_occupying om;
                            if Hashtbl.mem t.code_cache om then enter key tr
                            else begin
                              arm_cooldown key m b om;
                              Osr_wait
                            end
                          end))
      in
      let exit_to m b (tr : osr_transfer) =
        t.osr_exits <- t.osr_exits + 1;
        Obs.Metrics.incr m_osr_exits;
        Obs.Trace.emit "osr_exit" (fun () ->
            Support.Json.
              [
                ("m", Int m);
                ("meth", String (meth_name m));
                ("header", Int b);
                ("reason", String "invalidate");
                ("osr_m", Int tr.osr_target);
              ]);
        Exit_to tr
      in
      (* a compiled frame saw the deopt epoch move at block [b]: if its
         code object is still the installed one, re-snapshot and keep
         going; if it is stale, transfer out into a freshly extracted
         *interpreted* continuation at the next loop header. Extraction
         failures memoize to Exit_stay — stale code is still correct
         code, it just stops being preferred. *)
      let on_osr_exit (m : meth_id) (src : fn) (b : bid) : osr_exit_verdict =
        match Hashtbl.find_opt t.code_cache m with
        | Some cur when cur == src -> Exit_stay
        | _ ->
            if not (Ir.Loops.is_header (loops_for m src) b) then Exit_watch
            else
              let key = (m, b) in
              let conts = try Hashtbl.find t.exit_conts key with Not_found -> [] in
              (match List.find_opt (fun (f, _) -> f == src) conts with
              | Some (_, Some tr) -> exit_to m b tr
              | Some (_, None) -> Exit_stay
              | None ->
                  let depth =
                    match Hashtbl.find_opt t.osr_meta m with
                    | Some o -> o.od_depth
                    | None -> 0
                  in
                  let cont =
                    if depth >= max_osr_depth then None
                    else
                      match
                        let x = Ir.Osr.extract_loop src ~header:b in
                        Ir.Verify.check x.Ir.Osr.x_fn;
                        x
                      with
                      | exception e when containable e -> None
                      | x ->
                          let _om, tr =
                            register_extraction ~src_m:m ~header:b
                              ~depth:(depth + 1) ~kind:"deopt" x
                          in
                          Some tr
                  in
                  Hashtbl.replace t.exit_conts key ((src, cont) :: conts);
                  (match cont with
                  | Some tr -> exit_to m b tr
                  | None -> Exit_stay))
      in
      (* a trap is unwinding out of an entered continuation: record the
         OSR-exit (the trap itself propagates unchanged — output parity
         with the no-OSR run is the exactness invariant) *)
      let on_osr_abort (om : meth_id) : unit =
        let src, b =
          match Hashtbl.find_opt t.osr_meta om with
          | Some o -> (o.od_src, o.od_bid)
          | None -> (om, -1)
        in
        t.osr_exits <- t.osr_exits + 1;
        Obs.Metrics.incr m_osr_exits;
        Obs.Trace.emit "osr_exit" (fun () ->
            Support.Json.
              [
                ("m", Int src);
                ("meth", String (meth_name src));
                ("header", Int b);
                ("reason", String "trap");
                ("osr_m", Int om);
              ])
      in
      if t.osr then begin
        vm.osr_threshold <- t.osr_threshold;
        vm.osr_exit_armed <- true;
        vm.on_osr <- on_osr;
        vm.on_osr_exit <- on_osr_exit;
        vm.on_osr_abort <- on_osr_abort;
        vm.osr_headers <-
          (fun m body b -> Ir.Loops.is_header (loops_for m body) b)
      end;
      vm.on_entry <-
        (fun m ->
          (* time-series sampling: one [None] match while detached *)
          sample_timeline t;
          (* serve mode: pump the background compiler — when it is idle
             and a request is waiting, service the highest-priority one.
             Requests that went stale while queued (installed via OSR,
             blacklisted, already pending) drop without occupying it. *)
          (match t.serve_queue with
          | None -> ()
          | Some q ->
              if not t.compiling then begin
                let rec pump () =
                  match Scheduler.pop q ~now:vm.cycles with
                  | None -> ()
                  | Some (qm, wait) ->
                      if
                        Hashtbl.mem t.code_cache qm
                        || Hashtbl.mem t.pending qm
                        || Hashtbl.mem t.blacklist qm
                      then pump ()
                      else begin
                        t.queue_waits <- wait :: t.queue_waits;
                        Obs.Metrics.observe m_queue_wait wait;
                        Obs.Trace.emit "serve_dequeue" (fun () ->
                            Support.Json.
                              [
                                ("m", Int qm);
                                ("meth", String (meth_name qm));
                                ("wait", Int wait);
                                ("depth", Int (Scheduler.length q));
                              ]);
                        compile_occupying qm
                      end
                in
                pump ()
              end);
          (* background compilations whose latency has elapsed install at
             the next entry of their method *)
          (match Hashtbl.find_opt t.pending m with
          | Some (body, ready_at) when vm.cycles >= ready_at ->
              Hashtbl.remove t.pending m;
              install m body (Ir.Fn.size body)
          | _ -> ());
          (* bounded cache: every entry of a resident method refreshes
             its retention (the LRU term of the eviction score) *)
          (match t.serve_cache with
          | None -> ()
          | Some cache ->
              if Hashtbl.mem t.code_cache m then
                Codecache.touch cache m ~now:vm.cycles);
          (* chaos: an invalidation storm throws away installed code, as a
             burst of spec misses would. Bounded by [max_recompiles] like
             real invalidations, so the engine still converges under
             rate=1.0 — after the cap the code stays installed. *)
          (if
             Support.Chaos.enabled ()
             && (not t.compiling)
             && Hashtbl.mem t.code_cache m
           then
             let recompiled =
               match Hashtbl.find_opt t.recompile_counts m with Some n -> n | None -> 0
             in
             if
               recompiled < t.max_recompiles
               && Support.Chaos.(roll Invalidation_storm)
             then begin
               Obs.Trace.emit "chaos" (fun () ->
                   Support.Json.
                     [
                       ( "fault",
                         String Support.Chaos.(fault_to_string Invalidation_storm) );
                       ("m", Int m);
                       ("meth", String (meth_name m));
                     ]);
               invalidate m ~misses:0 ~recompiled
             end);
          if
            (not t.compiling)
            && (not (Hashtbl.mem t.code_cache m))
            && (not (Hashtbl.mem t.pending m))
            && (not (Hashtbl.mem t.blacklist m))
            && (Ir.Program.meth prog m).body <> None
            &&
            let invocations = Runtime.Profile.invocation_count vm.profiles m in
            (invocations + 1 >= config.hotness_threshold
            (* backedge-driven hotness: a method whose loop crossed the
               OSR bar promotes at its next call even if its invocation
               count never will (the single-invocation blind spot) *)
            || (t.osr_threshold < max_int
               && Runtime.Profile.max_block_count vm.profiles m
                  >= t.osr_threshold))
            && invocations + 1
               >= (match Hashtbl.find_opt t.cooldown m with Some c -> c | None -> 0)
          then begin
            if not (Hashtbl.mem t.first_hot m) then
              Hashtbl.replace t.first_hot m vm.cycles;
            match t.serve_queue with
            | None -> compile_now m
            | Some q ->
                (* serve mode: hot methods request compilation instead of
                   compiling inline; admission control may shed the
                   request (or a cheaper waiting one), in which case the
                   method keeps interpreting and retries on later
                   entries with ever-growing hotness *)
                if not (Scheduler.mem q m) then begin
                  let hotness =
                    let inv = Runtime.Profile.invocation_count vm.profiles m + 1 in
                    let backedge =
                      if t.osr_threshold < max_int then
                        Runtime.Profile.max_block_count vm.profiles m / 64
                      else 0
                    in
                    max inv backedge
                  in
                  let shed v reason =
                    t.sheds <- t.sheds + 1;
                    Obs.Metrics.incr m_sheds;
                    Obs.Trace.emit "shed" (fun () ->
                        Support.Json.
                          [
                            ("m", Int v);
                            ("meth", String (meth_name v));
                            ("reason", String reason);
                            ("depth", Int (Scheduler.length q));
                          ])
                  in
                  let admitted () =
                    Obs.Metrics.incr m_enqueues;
                    Obs.Trace.emit "serve_enqueue" (fun () ->
                        Support.Json.
                          [
                            ("m", Int m);
                            ("meth", String (meth_name m));
                            ("hotness", Int hotness);
                            ("depth", Int (Scheduler.length q));
                          ])
                  in
                  match Scheduler.enqueue q ~meth:m ~hotness ~now:vm.cycles with
                  | Scheduler.Bumped -> ()
                  | Scheduler.Admitted -> admitted ()
                  | Scheduler.Displaced v ->
                      shed v "displaced";
                      admitted ()
                  | Scheduler.Rejected -> shed m "rejected"
                end
          end);
      vm.on_spec_miss <-
        (fun m _site ->
          if t.spec_miss_threshold < max_int && Hashtbl.mem t.code_cache m then begin
            let r =
              match Hashtbl.find_opt t.miss_counts m with
              | Some r -> r
              | None ->
                  let r = ref 0 in
                  Hashtbl.replace t.miss_counts m r;
                  r
            in
            incr r;
            let recompiled =
              match Hashtbl.find_opt t.recompile_counts m with Some n -> n | None -> 0
            in
            if !r >= t.spec_miss_threshold && recompiled < t.max_recompiles then
              (* drop the code, let the interpreter re-profile the shifted
                 receiver distribution, recompile later *)
              invalidate m ~misses:!r ~recompiled
          end))
  ;
  t

let run_main (t : t) : Runtime.Values.value = Runtime.Interp.run_main t.vm

let run_meth (t : t) (name : string) (args : Runtime.Values.value list) :
    Runtime.Values.value =
  Runtime.Interp.run_meth t.vm name args

let output (t : t) : string = Runtime.Interp.output t.vm

(* Total installed code size (the paper's Figure 10 / Table I metric). *)
let installed_code_size (t : t) : int =
  Hashtbl.fold (fun _ fn acc -> acc + Ir.Fn.size fn) t.code_cache 0

let installed_methods (t : t) : int = Hashtbl.length t.code_cache

(* Per-site inline-cache statistics (live + retired), for `selvm events`
   and the bench smoke's hit-rate reporting. *)
let ic_stats (t : t) : Runtime.Interp.ic_stat list = Runtime.Interp.ic_stats t.vm

let superinst_stats (t : t) : Runtime.Interp.sstat list =
  Runtime.Interp.superinst_stats t.vm

(* How the interpreted tier dispatches, for reports: the threaded tier's
   closure chains, the prepared tier's dispatch match, or the reference
   walker. *)
let dispatch_label (t : t) : string =
  match t.vm.backend with
  | Runtime.Interp.Threaded -> "threaded"
  | Runtime.Interp.Prepared -> "match"
  | Runtime.Interp.Reference -> "walker"

(* Async-compilation accounting: a pending body whose method is never
   re-entered would otherwise stay invisible to [installed_code_size] and
   [compilations], under-reporting the Table I code-size metric. *)

let pending_methods (t : t) : int = Hashtbl.length t.pending

let pending_code_size (t : t) : int =
  Hashtbl.fold (fun _ (body, _) acc -> acc + Ir.Fn.size body) t.pending 0

(* Installs every pending compilation whose simulated latency has elapsed
   on the execution clock — a background compiler thread would have had
   them live; only the re-entry that normally triggers installation never
   happened. With [force], still-in-flight bodies install too. Returns the
   number installed. Call at end of run (the harness does) so code-size
   accounting matches what was actually compiled. *)
let flush_pending ?(force = false) (t : t) : int =
  let ready =
    Hashtbl.fold
      (fun m (body, ready_at) acc ->
        if force || t.vm.cycles >= ready_at then (m, body) :: acc else acc)
      t.pending []
    (* deterministic install order, so traces are run-to-run identical *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (m, body) ->
      Hashtbl.remove t.pending m;
      t.install_pending m body)
    ready;
  List.length ready

let compiled_body (t : t) (name : string) : fn option =
  match Ir.Program.find_meth t.vm.prog name with
  | Some m -> Hashtbl.find_opt t.code_cache m
  | None -> None

let blacklisted (t : t) (m : meth_id) : bool = Hashtbl.mem t.blacklist m

(* End-of-run gauges: point-in-time state the counters above cannot carry.
   Split from the counters so the caller decides when the snapshot is
   meaningful (the CLI takes it after the workload finishes). *)
let g_code_size = Obs.Metrics.gauge "jit.code_size"
let g_compiled_methods = Obs.Metrics.gauge "jit.compiled_methods"
let g_compile_cycles = Obs.Metrics.gauge "jit.compile_cycles"
let g_vm_cycles = Obs.Metrics.gauge "vm.cycles"
let g_vm_steps = Obs.Metrics.gauge "vm.steps"
let g_ic_sites = Obs.Metrics.gauge "ic.sites"
let g_ic_hits = Obs.Metrics.gauge "ic.hits"
let g_ic_misses = Obs.Metrics.gauge "ic.misses"
let g_ic_megamorphic = Obs.Metrics.gauge "ic.megamorphic"
let m_ic_hit_rate = Obs.Metrics.histogram "ic.site_hit_rate_pct"
let g_osr_methods = Obs.Metrics.gauge "osr.methods"
let g_superinst_patterns = Obs.Metrics.gauge "superinst.patterns"
let g_superinst_sites = Obs.Metrics.gauge "superinst.fused_sites"
let g_superinst_weight = Obs.Metrics.gauge "superinst.fused_weight"
let g_queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let g_cache_used = Obs.Metrics.gauge "serve.cache_used"
let g_cache_resident = Obs.Metrics.gauge "serve.cache_resident"

let snapshot_metrics (t : t) : unit =
  Obs.Metrics.set g_code_size (installed_code_size t);
  Obs.Metrics.set g_compiled_methods (installed_methods t);
  Obs.Metrics.set g_compile_cycles t.compile_cycles;
  Obs.Metrics.set g_vm_cycles t.vm.cycles;
  Obs.Metrics.set g_vm_steps t.vm.steps;
  let stats = ic_stats t in
  Obs.Metrics.set g_ic_sites (List.length stats);
  let hits = ref 0 and misses = ref 0 and mega = ref 0 in
  List.iter
    (fun (s : Runtime.Interp.ic_stat) ->
      hits := !hits + s.st_hits;
      misses := !misses + s.st_misses;
      mega := !mega + s.st_mega;
      let dispatches = s.st_hits + s.st_misses + s.st_mega in
      if dispatches > 0 then
        Obs.Metrics.observe m_ic_hit_rate (100 * s.st_hits / dispatches))
    stats;
  Obs.Metrics.set g_ic_hits !hits;
  Obs.Metrics.set g_ic_misses !misses;
  Obs.Metrics.set g_ic_megamorphic !mega;
  (* the mined superinstruction table: aggregate gauges plus one gauge
     per pattern (deterministic for a given program + workload, so the
     export byte-compares across identical runs) *)
  let sstats = superinst_stats t in
  Obs.Metrics.set g_superinst_patterns (List.length sstats);
  let sites = ref 0 and weight = ref 0 in
  List.iter
    (fun (s : Runtime.Interp.sstat) ->
      sites := !sites + s.ss_sites;
      weight := !weight + s.ss_weight;
      Obs.Metrics.set
        (Obs.Metrics.gauge ("superinst.pattern." ^ s.ss_pattern))
        s.ss_sites)
    sstats;
  Obs.Metrics.set g_superinst_sites !sites;
  Obs.Metrics.set g_superinst_weight !weight;
  Obs.Metrics.set g_osr_methods (Hashtbl.length t.osr_meta);
  (match t.serve_queue with
  | Some q -> Obs.Metrics.set g_queue_depth (Scheduler.length q)
  | None -> ());
  match t.serve_cache with
  | Some c ->
      Obs.Metrics.set g_cache_used (Codecache.used c);
      Obs.Metrics.set g_cache_resident (Codecache.resident c)
  | None -> ()

let bailout_stats (t : t) : bailout_stats =
  {
    failed_attempts = List.length t.bailouts;
    failed_methods = Hashtbl.length t.failure_counts;
    blacklisted_methods =
      Hashtbl.fold (fun m () acc -> m :: acc) t.blacklist [] |> List.sort compare;
  }

(* End-of-run serving picture: shed/evict churn plus the two latency
   populations (queue waits of serviced requests, per-method time to
   peak), sorted ascending so percentile extraction is exact. *)
type serve_stats = {
  sv_sheds : int;
  sv_evictions : int;
  sv_queue_depth : int;        (* requests still waiting at end of run *)
  sv_cache_used : int;
  sv_cache_resident : int;
  sv_queue_waits : int list;   (* ascending *)
  sv_ttp : int list;           (* ascending *)
}

let serve_stats (t : t) : serve_stats =
  {
    sv_sheds = t.sheds;
    sv_evictions = List.length t.evictions;
    sv_queue_depth =
      (match t.serve_queue with Some q -> Scheduler.length q | None -> 0);
    sv_cache_used =
      (match t.serve_cache with
      | Some c -> Codecache.used c
      | None -> installed_code_size t);
    sv_cache_resident =
      (match t.serve_cache with
      | Some c -> Codecache.resident c
      | None -> installed_methods t);
    sv_queue_waits = List.sort compare t.queue_waits;
    sv_ttp = List.sort compare (List.map snd t.ttp);
  }
