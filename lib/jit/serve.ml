(* Multi-tenant serving driver: see the interface for the isolation
   invariant. The implementation discipline that upholds it: tenant
   state lives entirely in the tenant's own engine and chaos plan; the
   only ambient state the driver touches (the trace clock, the chaos
   plan) is re-pointed at the running tenant around every slice and
   restored after, so no tenant ever observes another's. *)

type tenant = {
  tn_id : string;
  tn_make : unit -> Ir.Types.program * Engine.config;
  tn_iters : int;
}

type limits = {
  queue_capacity : int option;
  queue_age_unit : int;
  cache_capacity : int option;
  compile_deadline : int option;
  chaos_rate : float;
  chaos_seed : int;
}

let default_limits =
  { queue_capacity = None; queue_age_unit = 1024; cache_capacity = None;
    compile_deadline = None; chaos_rate = 0.0; chaos_seed = 0 }

(* FNV-1a over the tenant id, mixed with the base seed and masked
   positive. A pure function of (base, id): a tenant's fault plan never
   depends on who else is in the fleet. *)
let seed_for ~(base : int) (id : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    id;
  ((base * 0x9E3779B1) lxor !h) land 0x3FFFFFFF

let parse_tenants (spec : string) : ((string * int) list, string) result =
  let bad part =
    Error
      (Printf.sprintf
         "bad tenant %S: want NAME or NAME*COUNT (count >= 1), e.g. \
          \"long-loop*3,gauss-mix\""
         part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        let part = String.trim part in
        match String.index_opt part '*' with
        | None -> if part = "" then bad part else go ((part, 1) :: acc) rest
        | Some i -> (
            let name = String.trim (String.sub part 0 i) in
            let count =
              String.trim (String.sub part (i + 1) (String.length part - i - 1))
            in
            match int_of_string_opt count with
            | Some n when n >= 1 && name <> "" -> go ((name, n) :: acc) rest
            | _ -> bad part))
  in
  if String.trim spec = "" then Error "empty --tenants spec"
  else go [] (String.split_on_char ',' spec)

type tenant_report = {
  tr_id : string;
  tr_seed : int;
  tr_iters : int;
  tr_checksum : int;
  tr_output : string;
  tr_steps : int;
  tr_cycles : int;
  tr_compile_cycles : int;
  tr_installs : int;
  tr_invalidations : int;
  tr_evictions : int;
  tr_sheds : int;
  tr_bailouts : int;
  tr_blacklisted : int;
  tr_cache_used : int;
  tr_queue_depth : int;
  tr_queue_wait_p50 : int;
  tr_queue_wait_p90 : int;
  tr_queue_wait_p99 : int;
  tr_queue_wait_max : int;
  tr_ttp_p50 : int;
  tr_ttp_p90 : int;
  tr_ttp_p99 : int;
  tr_ttp_max : int;
}

(* Exact rank percentile of an ascending list — the shared
   [Support.Stats.percentile], re-exported for the bench smoke. *)
let percentile = Support.Stats.percentile

type live = {
  lv_tenant : tenant;
  lv_engine : Engine.t;
  lv_plan : Support.Chaos.plan option;
  lv_seed : int;
  mutable lv_done : int;
  mutable lv_checksum : int;
}

(* One benchmark iteration of one tenant, under that tenant's ambient
   state: its own trace clock and its own chaos plan (whose RNG stream
   persists across the tenant's slices — [Chaos.with_plan], not a fresh
   [scoped] plan). *)
let slice (lv : live) : unit =
  let vm = lv.lv_engine.Engine.vm in
  Obs.Trace.set_clock (fun () -> vm.Runtime.Interp.cycles);
  Support.Chaos.with_plan lv.lv_plan (fun () ->
      Obs.Trace.emit "serve_slice" (fun () ->
          Support.Json.
            [
              ("tenant", String lv.lv_tenant.tn_id);
              ("iter", Int (lv.lv_done + 1));
            ]);
      let v =
        Engine.run_meth lv.lv_engine "bench" [ Runtime.Values.Vunit ]
      in
      let x = match v with Runtime.Values.Vint n -> n | _ -> 0 in
      lv.lv_checksum <- ((lv.lv_checksum * 31) + x) land max_int;
      lv.lv_done <- lv.lv_done + 1)

let finish (lv : live) : tenant_report =
  let e = lv.lv_engine in
  let vm = e.Engine.vm in
  Obs.Trace.set_clock (fun () -> vm.Runtime.Interp.cycles);
  Support.Chaos.with_plan lv.lv_plan (fun () ->
      ignore (Engine.flush_pending e);
      (* one final row per tenant so the timeline's last sample reflects
         end-of-run state (the cadence may have left it mid-interval) *)
      Engine.sample_timeline ~force:true e;
      let st = Engine.serve_stats e in
      let bs = Engine.bailout_stats e in
      let r =
        {
          tr_id = lv.lv_tenant.tn_id;
          tr_seed = lv.lv_seed;
          tr_iters = lv.lv_done;
          tr_checksum = lv.lv_checksum;
          tr_output = Engine.output e;
          tr_steps = vm.Runtime.Interp.steps;
          tr_cycles = vm.Runtime.Interp.cycles;
          tr_compile_cycles = e.Engine.compile_cycles;
          tr_installs = List.length e.Engine.compilations;
          tr_invalidations = List.length e.Engine.invalidations;
          tr_evictions = st.Engine.sv_evictions;
          tr_sheds = st.Engine.sv_sheds;
          tr_bailouts = bs.Engine.failed_attempts;
          tr_blacklisted = List.length bs.Engine.blacklisted_methods;
          tr_cache_used = st.Engine.sv_cache_used;
          tr_queue_depth = st.Engine.sv_queue_depth;
          tr_queue_wait_p50 = percentile st.Engine.sv_queue_waits 0.50;
          tr_queue_wait_p90 = percentile st.Engine.sv_queue_waits 0.90;
          tr_queue_wait_p99 = percentile st.Engine.sv_queue_waits 0.99;
          tr_queue_wait_max = percentile st.Engine.sv_queue_waits 1.0;
          tr_ttp_p50 = percentile st.Engine.sv_ttp 0.50;
          tr_ttp_p90 = percentile st.Engine.sv_ttp 0.90;
          tr_ttp_p99 = percentile st.Engine.sv_ttp 0.99;
          tr_ttp_max = percentile st.Engine.sv_ttp 1.0;
        }
      in
      Obs.Trace.emit "serve_tenant_done" (fun () ->
          Support.Json.
            [
              ("tenant", String r.tr_id);
              ("iters", Int r.tr_iters);
              ("steps", Int r.tr_steps);
              ("vm_cycles", Int r.tr_cycles);
              ("evictions", Int r.tr_evictions);
              ("sheds", Int r.tr_sheds);
            ]);
      r)

let run ?(limits = default_limits) ?timeline ?slo (tenants : tenant list) :
    tenant_report list =
  Obs.Trace.emit "serve_start" (fun () ->
      Support.Json.
        [
          ("tenants", Int (List.length tenants));
          ( "queue_capacity",
            Int (match limits.queue_capacity with Some c -> c | None -> -1) );
          ( "cache_capacity",
            Int (match limits.cache_capacity with Some c -> c | None -> -1) );
          ( "compile_deadline",
            Int (match limits.compile_deadline with Some c -> c | None -> -1) );
          ("chaos_rate", Float limits.chaos_rate);
        ]);
  let lives =
    List.map
      (fun tn ->
        let prog, config = tn.tn_make () in
        let engine =
          Engine.create ?queue_capacity:limits.queue_capacity
            ~queue_age_unit:limits.queue_age_unit
            ?cache_capacity:limits.cache_capacity
            ?compile_deadline:limits.compile_deadline prog config
        in
        let seed = seed_for ~base:limits.chaos_seed tn.tn_id in
        let plan =
          if limits.chaos_rate > 0.0 then
            Some (Support.Chaos.make ~seed ~rate:limits.chaos_rate)
          else None
        in
        (match timeline with
        | Some tl -> Engine.attach_timeline ?monitor:slo engine ~source:tn.tn_id tl
        | None -> ());
        { lv_tenant = tn; lv_engine = engine; lv_plan = plan; lv_seed = seed;
          lv_done = 0; lv_checksum = 0 })
      tenants
  in
  (* cross-tenant fleet snapshot: queue/cache totals plus the
     p50/p90/p99/max latency percentiles over every tenant's population
     so far. Clocked on the fleet's frontier (the furthest tenant clock)
     — a pure function of per-tenant state, so same-seed runs emit
     byte-identical rows. *)
  let fleet_due = ref 0 in
  let fleet_sample ~force () =
    match timeline with
    | None -> ()
    | Some tl ->
        let now =
          List.fold_left
            (fun acc lv ->
              max acc lv.lv_engine.Engine.vm.Runtime.Interp.cycles)
            0 lives
        in
        if force || now >= !fleet_due then begin
          let sum f = List.fold_left (fun acc lv -> acc + f lv.lv_engine) 0 lives in
          let active =
            List.length
              (List.filter (fun lv -> lv.lv_done < lv.lv_tenant.tn_iters) lives)
          in
          let waits =
            List.concat_map (fun lv -> lv.lv_engine.Engine.queue_waits) lives
            |> List.sort compare
          in
          let ttp =
            List.concat_map
              (fun lv -> List.map snd lv.lv_engine.Engine.ttp)
              lives
            |> List.sort compare
          in
          let w50, w90, w99, wmax = Support.Stats.percentiles waits in
          let t50, t90, t99, tmax = Support.Stats.percentiles ttp in
          Obs.Timeline.fleet tl ~cycles:now
            Support.Json.
              [
                ("tenants", Int (List.length lives));
                ("active", Int active);
                ( "queue_depth",
                  Int
                    (sum (fun e ->
                         match e.Engine.serve_queue with
                         | Some q -> Scheduler.length q
                         | None -> 0)) );
                ( "cache_used",
                  Int
                    (sum (fun e ->
                         match e.Engine.serve_cache with
                         | Some c -> Codecache.used c
                         | None -> 0)) );
                ("sheds", Int (sum (fun e -> e.Engine.sheds)));
                ( "evictions",
                  Int (sum (fun e -> List.length e.Engine.evictions)) );
                ( "invalidations",
                  Int (sum (fun e -> List.length e.Engine.invalidations)) );
                ("queue_wait_p50", Int w50);
                ("queue_wait_p90", Int w90);
                ("queue_wait_p99", Int w99);
                ("queue_wait_max", Int wmax);
                ("ttp_p50", Int t50);
                ("ttp_p90", Int t90);
                ("ttp_p99", Int t99);
                ("ttp_max", Int tmax);
              ];
          fleet_due := now + Obs.Timeline.interval tl
        end
  in
  (* round-robin, one iteration per tenant per turn; tenants drop out as
     they finish *)
  let remaining = ref true in
  while !remaining do
    remaining := false;
    List.iter
      (fun lv ->
        if lv.lv_done < lv.lv_tenant.tn_iters then begin
          slice lv;
          if lv.lv_done < lv.lv_tenant.tn_iters then remaining := true
        end)
      lives;
    fleet_sample ~force:false ()
  done;
  let reports = List.map finish lives in
  fleet_sample ~force:true ();
  reports

let report_json (reports : tenant_report list) : Support.Json.t =
  Support.Json.Obj
    [
      ("tenants", Support.Json.Int (List.length reports));
      ( "fleet",
        Support.Json.List
          (List.map
             (fun r ->
               Support.Json.Obj
                 [
                   ("id", Support.Json.String r.tr_id);
                   ("seed", Support.Json.Int r.tr_seed);
                   ("iters", Support.Json.Int r.tr_iters);
                   ("checksum", Support.Json.Int r.tr_checksum);
                   ( "output_digest",
                     Support.Json.String (Digest.to_hex (Digest.string r.tr_output))
                   );
                   ("steps", Support.Json.Int r.tr_steps);
                   ("cycles", Support.Json.Int r.tr_cycles);
                   ("compile_cycles", Support.Json.Int r.tr_compile_cycles);
                   ("installs", Support.Json.Int r.tr_installs);
                   ("invalidations", Support.Json.Int r.tr_invalidations);
                   ("evictions", Support.Json.Int r.tr_evictions);
                   ("sheds", Support.Json.Int r.tr_sheds);
                   ("bailouts", Support.Json.Int r.tr_bailouts);
                   ("blacklisted", Support.Json.Int r.tr_blacklisted);
                   ("cache_used", Support.Json.Int r.tr_cache_used);
                   ("queue_depth", Support.Json.Int r.tr_queue_depth);
                   ("queue_wait_p50", Support.Json.Int r.tr_queue_wait_p50);
                   ("queue_wait_p90", Support.Json.Int r.tr_queue_wait_p90);
                   ("queue_wait_p99", Support.Json.Int r.tr_queue_wait_p99);
                   ("queue_wait_max", Support.Json.Int r.tr_queue_wait_max);
                   ("time_to_peak_p50", Support.Json.Int r.tr_ttp_p50);
                   ("time_to_peak_p90", Support.Json.Int r.tr_ttp_p90);
                   ("time_to_peak_p99", Support.Json.Int r.tr_ttp_p99);
                   ("time_to_peak_max", Support.Json.Int r.tr_ttp_max);
                 ])
             reports) );
    ]
