(* Inline-tree reconstruction for `selvm explain`.

   The inliner's expand_decision / inline_decision events carry node and
   parent ids, the target label and the benefit / cost / penalty /
   threshold terms of each decision (see docs/OBSERVABILITY.md). This
   module folds an event stream back into the paper's inline trees — one
   per compilation — so "why was this callsite (not) inlined?" is
   answerable without reading trace files by hand.

   Compilation spans: the engine is non-reentrant, so every event between
   a compile_start and the matching compile_done / compile_bailout belongs
   to that compilation. Decisions arriving outside any span (a standalone
   Algorithm.compile run, as the tests do) synthesize a span keyed by the
   decision's root method. Round numbers are inferred by counting the
   inline_round events inside the span: decisions before the k-th round
   marker belong to round k. *)

type phase = Expand | Inline

type decision = {
  d_round : int;
  d_phase : phase;
  d_verdict : string;      (* expand | decline | inline | skip *)
  d_benefit : float;
  d_cost : float;
  d_penalty : float option;  (* ψ; expansion decisions only *)
  d_threshold : float;
  d_priority : float;
  d_cluster : bool;        (* spliced as a cluster member, not gated *)
  d_context : int;         (* tree size (expand) / root size (inline) *)
  d_at_cycles : int;
}

type cnode = {
  x_nid : int;
  x_parent : int;          (* parent nid; -1 for root children *)
  x_target : string;
  x_site : int * int;      (* method id, site ordinal *)
  x_callsite : int;
  x_depth : int;
  mutable x_decisions : decision list;  (* chronological *)
  mutable x_children : cnode list;      (* ascending nid *)
}

type compilation = {
  c_meth : string;
  c_m : int;
  c_start_cycles : int;
  c_rounds : int;
  c_outcome : string;
  c_roots : cnode list;    (* ascending nid *)
}

(* ---------- event folding ---------- *)

let int_field j key =
  match Option.bind (Support.Json.member key j) Support.Json.to_int_opt with
  | Some n -> n
  | None -> 0

let str_field j key =
  match Option.bind (Support.Json.member key j) Support.Json.to_string_opt with
  | Some s -> s
  | None -> "?"

let num_field j key =
  match Support.Json.member key j with
  | Some (Support.Json.Int n) -> float_of_int n
  | Some (Support.Json.Float f) -> f
  | _ -> 0.0

let bool_field j key =
  match Support.Json.member key j with Some (Support.Json.Bool b) -> b | _ -> false

type builder = {
  b_meth : string;
  b_m : int;
  b_start : int;
  mutable b_rounds : int;
  b_nodes : (int, cnode) Hashtbl.t;
  mutable b_order : int list;  (* nids, reverse first-seen order *)
}

let finish (b : builder) ~(outcome : string) : compilation =
  let nodes =
    List.rev_map (fun nid -> Hashtbl.find b.b_nodes nid) b.b_order
  in
  List.iter (fun n -> n.x_decisions <- List.rev n.x_decisions) nodes;
  (* link children to creation-time parents; orphaned parents (never the
     subject of a decision) promote the child to a root *)
  let roots = ref [] in
  List.iter
    (fun n ->
      match Hashtbl.find_opt b.b_nodes n.x_parent with
      | Some p when n.x_parent <> n.x_nid -> p.x_children <- p.x_children @ [ n ]
      | _ -> roots := n :: !roots)
    (List.sort (fun a b -> compare a.x_nid b.x_nid) nodes);
  {
    c_meth = b.b_meth;
    c_m = b.b_m;
    c_start_cycles = b.b_start;
    c_rounds = b.b_rounds;
    c_outcome = outcome;
    c_roots = List.rev !roots;
  }

let of_events (events : Support.Json.t list) : compilation list =
  let done_ = ref [] in
  let open_ : builder option ref = ref None in
  let close outcome =
    match !open_ with
    | Some b ->
        done_ := finish b ~outcome :: !done_;
        open_ := None
    | None -> ()
  in
  let builder_for ?(name : string option) (root : int) (cycles : int) : builder =
    match !open_ with
    | Some b when b.b_m = root -> b
    | _ ->
        (* a decision outside any span, or for a different root than the
           open synthetic span: start a fresh synthetic span *)
        close "(no compile event)";
        let b =
          {
            b_meth = (match name with Some n -> n | None -> Printf.sprintf "m%d" root);
            b_m = root;
            b_start = cycles;
            b_rounds = 0;
            b_nodes = Hashtbl.create 16;
            b_order = [];
          }
        in
        open_ := Some b;
        b
  in
  let node_for (b : builder) j : cnode =
    let nid = int_field j "nid" in
    match Hashtbl.find_opt b.b_nodes nid with
    | Some n -> n
    | None ->
        let n =
          {
            x_nid = nid;
            x_parent = int_field j "parent";
            x_target = str_field j "target";
            x_site = (int_field j "site_m", int_field j "site_idx");
            x_callsite = int_field j "callsite";
            x_depth = int_field j "depth";
            x_decisions = [];
            x_children = [];
          }
        in
        Hashtbl.replace b.b_nodes nid n;
        b.b_order <- nid :: b.b_order;
        n
  in
  List.iter
    (fun j ->
      let cycles = int_field j "cycles" in
      match str_field j "ev" with
      | "compile_start" ->
          close "(no compile event)";
          open_ :=
            Some
              {
                b_meth = str_field j "meth";
                b_m = int_field j "m";
                b_start = cycles;
                b_rounds = 0;
                b_nodes = Hashtbl.create 16;
                b_order = [];
              }
      | "compile_done" ->
          close
            (Printf.sprintf "compiled, %d nodes (latency %d)" (int_field j "size")
               (int_field j "latency"))
      | "compile_bailout" -> close ("bailout: " ^ str_field j "reason")
      | "inline_round" when not (bool_field j "fuel_abort") ->
          let b = builder_for (int_field j "root") cycles in
          b.b_rounds <- max b.b_rounds (int_field j "round")
      | ("expand_decision" | "inline_decision") as kind ->
          let b = builder_for (int_field j "root") cycles in
          let n = node_for b j in
          let phase = if kind = "expand_decision" then Expand else Inline in
          n.x_decisions <-
            {
              d_round = b.b_rounds + 1;
              d_phase = phase;
              d_verdict = str_field j "verdict";
              d_benefit = num_field j "benefit";
              d_cost = num_field j "cost";
              d_penalty =
                (if phase = Expand then Some (num_field j "penalty") else None);
              d_threshold = num_field j "threshold";
              d_priority = num_field j "priority";
              d_cluster = bool_field j "cluster";
              d_context =
                int_field j (if phase = Expand then "tree_size" else "root_size");
              d_at_cycles = cycles;
            }
            :: n.x_decisions
      | _ -> ())
    events;
  close "(trace ended mid-compilation)";
  List.rev !done_

let of_lines (lines : string list) : (compilation list, string) result =
  let rec go lineno acc = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else (
          match Support.Json.of_string line with
          | Ok j -> go (lineno + 1) (j :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let of_file (path : string) : (compilation list, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))

(* ---------- rendering ---------- *)

(* "declined r1, expanded r3": one entry per run of equal verdicts, tagged
   with the run's first round. *)
let phase_history (phase : phase) (ds : decision list) : string option =
  let past_tense d =
    match d.d_verdict with
    | "expand" -> "expanded"
    | "decline" -> "declined"
    | "inline" -> if d.d_cluster then "inlined(cluster)" else "inlined"
    | "skip" -> "skipped"
    | v -> v
  in
  let ds = List.filter (fun d -> d.d_phase = phase) ds in
  let runs =
    List.fold_left
      (fun acc d ->
        match acc with
        | (v, _) :: _ when v = past_tense d -> acc
        | _ -> (past_tense d, d.d_round) :: acc)
      [] ds
  in
  match runs with
  | [] -> None
  | _ ->
      Some
        (String.concat ", "
           (List.rev_map (fun (v, r) -> Printf.sprintf "%s r%d" v r) runs))

let last_of_phase (phase : phase) (ds : decision list) : decision option =
  List.fold_left
    (fun acc d -> if d.d_phase = phase then Some d else acc)
    None ds

let node_line (n : cnode) : string =
  let buf = Buffer.create 128 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s @%d:%d v%d" n.x_target (fst n.x_site) (snd n.x_site) n.x_callsite;
  let history =
    List.filter_map
      (fun p -> phase_history p n.x_decisions)
      [ Expand; Inline ]
  in
  if history <> [] then pf " [%s]" (String.concat "; " history);
  (match (last_of_phase Inline n.x_decisions, last_of_phase Expand n.x_decisions) with
  | Some d, _ ->
      pf " B=%.2f cost=%.2f prio=%.4f thr=%.4f" d.d_benefit d.d_cost d.d_priority
        d.d_threshold
  | None, Some d ->
      pf " B=%.2f cost=%.0f" d.d_benefit d.d_cost;
      (match d.d_penalty with Some p -> pf " psi=%.2f" p | None -> ());
      pf " prio=%.4f thr=%.4f" d.d_priority d.d_threshold
  | None, None -> ());
  Buffer.contents buf

let render_tree (buf : Buffer.t) (roots : cnode list) : unit =
  let rec go indent n =
    Buffer.add_string buf
      (Printf.sprintf "%s+- %s\n" (String.make (2 * indent) ' ') (node_line n));
    List.iter (go (indent + 1)) n.x_children
  in
  List.iter (go 1) roots

let header (c : compilation) : string =
  Printf.sprintf "compile %s (m%d) @%d: %d round%s, %s" c.c_meth c.c_m c.c_start_cycles
    c.c_rounds
    (if c.c_rounds = 1 then "" else "s")
    c.c_outcome

let render (cs : compilation list) : string =
  let buf = Buffer.create 1024 in
  if cs = [] then Buffer.add_string buf "no compilations in trace\n"
  else
    List.iter
      (fun c ->
        Buffer.add_string buf (header c);
        Buffer.add_char buf '\n';
        if c.c_roots = [] then Buffer.add_string buf "  (no inlining decisions)\n"
        else render_tree buf c.c_roots;
        Buffer.add_char buf '\n')
      cs;
  Buffer.contents buf

(* Full decision provenance for callsites matching [meth] (target label)
   and, when given, [site] (the site ordinal). *)
let render_why (cs : compilation list) ~(meth : string) ~(site : int option) :
    string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let matches (n : cnode) =
    n.x_target = meth
    && match site with Some s -> snd n.x_site = s | None -> true
  in
  let found = ref 0 in
  List.iter
    (fun c ->
      let rec visit (n : cnode) =
        if matches n then begin
          incr found;
          pf "%s\n" (header c);
          pf "  %s @%d:%d v%d  nid=%d parent=%s depth=%d\n" n.x_target (fst n.x_site)
            (snd n.x_site) n.x_callsite n.x_nid
            (if n.x_parent < 0 then "root" else string_of_int n.x_parent)
            n.x_depth;
          List.iter
            (fun d ->
              match d.d_phase with
              | Expand ->
                  pf
                    "    r%-2d @%-8d expand  %-7s B=%.4f cost=%.0f psi=%.4f \
                     prio=%.4f thr=%.4f tree_size=%d\n"
                    d.d_round d.d_at_cycles d.d_verdict d.d_benefit d.d_cost
                    (match d.d_penalty with Some p -> p | None -> 0.0)
                    d.d_priority d.d_threshold d.d_context
              | Inline ->
                  pf
                    "    r%-2d @%-8d inline  %-7s B=%.4f cost=%.2f prio=%.4f \
                     thr=%.4f root_size=%d%s\n"
                    d.d_round d.d_at_cycles d.d_verdict d.d_benefit d.d_cost
                    d.d_priority d.d_threshold d.d_context
                    (if d.d_cluster then " (cluster member)" else ""))
            n.x_decisions;
          pf "\n"
        end;
        List.iter visit n.x_children
      in
      List.iter visit c.c_roots)
    cs;
  if !found = 0 then
    pf "no decisions recorded for %s%s\n" meth
      (match site with Some s -> Printf.sprintf ":%d" s | None -> "");
  Buffer.contents buf
