(* Cross-run drift diffing: metrics exports, timelines, and the inline
   decision trees Explain rebuilds — the reviewable diff the warm-start
   roadmap item wants between two versions (or two runs) of the JIT.

   All comparisons are structural and deterministic: JSON values diff by
   sorted key paths, timelines line-by-line, decision trees by matching
   nodes on their stable (target, profile-site) identity path. Two
   same-seed runs of the same build diff to nothing; a perturbed
   inlining threshold shows up as verdict flips and priority/threshold
   deltas, not as an opaque byte mismatch. *)

type delta = { dl_path : string; dl_a : string; dl_b : string }

let scalar_string (j : Support.Json.t) : string = Support.Json.to_string j

(* Structural diff of two JSON documents. Objects diff over the union of
   their keys in sorted order ("(absent)" for a missing side), lists by
   index, scalars by serialized value. *)
let diff_json (a : Support.Json.t) (b : Support.Json.t) : delta list =
  let out = ref [] in
  let emit path va vb = out := { dl_path = path; dl_a = va; dl_b = vb } :: !out in
  let join path k = if path = "" then k else path ^ "." ^ k in
  let rec go path (a : Support.Json.t) (b : Support.Json.t) =
    match (a, b) with
    | Support.Json.Obj fa, Support.Json.Obj fb ->
        let keys =
          List.sort_uniq compare (List.map fst fa @ List.map fst fb)
        in
        List.iter
          (fun k ->
            match (List.assoc_opt k fa, List.assoc_opt k fb) with
            | Some va, Some vb -> go (join path k) va vb
            | Some va, None -> emit (join path k) (scalar_string va) "(absent)"
            | None, Some vb -> emit (join path k) "(absent)" (scalar_string vb)
            | None, None -> ())
          keys
    | Support.Json.List la, Support.Json.List lb ->
        let na = List.length la and nb = List.length lb in
        if na <> nb then
          emit (join path "length") (string_of_int na) (string_of_int nb);
        List.iteri
          (fun i (va, vb) -> go (join path (string_of_int i)) va vb)
          (List.combine
             (List.filteri (fun i _ -> i < min na nb) la)
             (List.filteri (fun i _ -> i < min na nb) lb))
    | _ ->
        if a <> b then emit path (scalar_string a) (scalar_string b)
  in
  go "" a b;
  List.rev !out

let diff_metrics = diff_json

(* Timelines are byte-identical across same-seed runs, so the diff is
   line-oriented: every differing line number, plus a length mismatch. *)
let diff_lines (a : string list) (b : string list) : delta list =
  let out = ref [] in
  let rec go n a b =
    match (a, b) with
    | [], [] -> ()
    | la :: ra, lb :: rb ->
        if la <> lb then
          out := { dl_path = Printf.sprintf "line %d" n; dl_a = la; dl_b = lb } :: !out;
        go (n + 1) ra rb
    | rest, [] ->
        out :=
          { dl_path = "length";
            dl_a = Printf.sprintf "%d more lines" (List.length rest);
            dl_b = "(end)" }
          :: !out
    | [], rest ->
        out :=
          { dl_path = "length";
            dl_a = "(end)";
            dl_b = Printf.sprintf "%d more lines" (List.length rest) }
          :: !out
  in
  go 1 a b;
  List.rev !out

(* ---------- inline-decision drift ---------- *)

type drift = {
  df_comp : string;   (* compilation identity: "meth#occurrence" *)
  df_node : string;   (* node identity path, "" for the compilation itself *)
  df_kind : string;   (* verdict | priority | threshold | benefit | cost | node | compilation *)
  df_a : string;
  df_b : string;
}

(* A node's identity inside its compilation: the chain of
   (target, declaring-site) keys from the root — stable across runs
   (node ids are emission-ordered and may shift; profile sites are
   keyed to the IR). *)
let node_key (n : Explain.cnode) : string =
  let sm, si = n.Explain.x_site in
  Printf.sprintf "%s@%d:%d" n.Explain.x_target sm si

(* The final decision of a phase, if any (decision lists are
   chronological). *)
let final_decision (n : Explain.cnode) (phase : Explain.phase) :
    Explain.decision option =
  List.fold_left
    (fun acc (d : Explain.decision) ->
      if d.Explain.d_phase = phase then Some d else acc)
    None n.Explain.x_decisions

let fnum (f : float) : string = Printf.sprintf "%.4f" f

(* Diff two matched nodes: verdict flips first (the headline), then
   priority/threshold/benefit/cost deltas of the final decision in each
   phase. *)
let diff_node ~(comp : string) ~(path : string) (a : Explain.cnode)
    (b : Explain.cnode) : drift list =
  let out = ref [] in
  let add kind va vb =
    out := { df_comp = comp; df_node = path; df_kind = kind; df_a = va; df_b = vb } :: !out
  in
  List.iter
    (fun phase ->
      let tag =
        match phase with Explain.Expand -> "expand" | Explain.Inline -> "inline"
      in
      match (final_decision a phase, final_decision b phase) with
      | None, None -> ()
      | Some d, None -> add (tag ^ "-verdict") d.Explain.d_verdict "(none)"
      | None, Some d -> add (tag ^ "-verdict") "(none)" d.Explain.d_verdict
      | Some da, Some db ->
          if da.Explain.d_verdict <> db.Explain.d_verdict then
            add (tag ^ "-verdict") da.Explain.d_verdict db.Explain.d_verdict;
          if da.Explain.d_priority <> db.Explain.d_priority then
            add (tag ^ "-priority") (fnum da.Explain.d_priority)
              (fnum db.Explain.d_priority);
          if da.Explain.d_threshold <> db.Explain.d_threshold then
            add (tag ^ "-threshold") (fnum da.Explain.d_threshold)
              (fnum db.Explain.d_threshold);
          if da.Explain.d_benefit <> db.Explain.d_benefit then
            add (tag ^ "-benefit") (fnum da.Explain.d_benefit)
              (fnum db.Explain.d_benefit);
          if da.Explain.d_cost <> db.Explain.d_cost then
            add (tag ^ "-cost") (fnum da.Explain.d_cost) (fnum db.Explain.d_cost))
    [ Explain.Expand; Explain.Inline ];
  List.rev !out

(* Pair children by identity key, duplicates by occurrence order. *)
let pair_children (xs : Explain.cnode list) (ys : Explain.cnode list) :
    (string * Explain.cnode option * Explain.cnode option) list =
  let keyed ns =
    let seen = Hashtbl.create 8 in
    List.map
      (fun n ->
        let k = node_key n in
        let occ = try Hashtbl.find seen k with Not_found -> 0 in
        Hashtbl.replace seen k (occ + 1);
        ((k, occ), n))
      ns
  in
  let ka = keyed xs and kb = keyed ys in
  let keys =
    List.sort_uniq compare (List.map fst ka @ List.map fst kb)
  in
  List.map
    (fun key ->
      let k, occ = key in
      let label = if occ = 0 then k else Printf.sprintf "%s#%d" k occ in
      (label, List.assoc_opt key ka, List.assoc_opt key kb))
    keys

let rec diff_forest ~(comp : string) ~(prefix : string)
    (xs : Explain.cnode list) (ys : Explain.cnode list) : drift list =
  List.concat_map
    (fun (label, a, b) ->
      let path = if prefix = "" then label else prefix ^ "/" ^ label in
      match (a, b) with
      | Some a, Some b ->
          diff_node ~comp ~path a b
          @ diff_forest ~comp ~prefix:path a.Explain.x_children
              b.Explain.x_children
      | Some _, None ->
          [ { df_comp = comp; df_node = path; df_kind = "node";
              df_a = "present"; df_b = "absent" } ]
      | None, Some _ ->
          [ { df_comp = comp; df_node = path; df_kind = "node";
              df_a = "absent"; df_b = "present" } ]
      | None, None -> [])
    (pair_children xs ys)

(* Compilations pair by (root method, occurrence): the k-th compilation
   of a method in run A against the k-th in run B. *)
let diff_decisions (a : Explain.compilation list)
    (b : Explain.compilation list) : drift list =
  let keyed comps =
    let seen = Hashtbl.create 8 in
    List.map
      (fun (c : Explain.compilation) ->
        let occ = try Hashtbl.find seen c.Explain.c_meth with Not_found -> 0 in
        Hashtbl.replace seen c.Explain.c_meth (occ + 1);
        ((c.Explain.c_meth, occ), c))
      comps
  in
  let ka = keyed a and kb = keyed b in
  let keys = List.sort_uniq compare (List.map fst ka @ List.map fst kb) in
  List.concat_map
    (fun key ->
      let meth, occ = key in
      let comp = if occ = 0 then meth else Printf.sprintf "%s#%d" meth occ in
      match (List.assoc_opt key ka, List.assoc_opt key kb) with
      | Some ca, Some cb ->
          let outcome =
            if ca.Explain.c_outcome <> cb.Explain.c_outcome then
              [ { df_comp = comp; df_node = ""; df_kind = "compilation";
                  df_a = ca.Explain.c_outcome; df_b = cb.Explain.c_outcome } ]
            else []
          in
          outcome
          @ diff_forest ~comp ~prefix:"" ca.Explain.c_roots cb.Explain.c_roots
      | Some _, None ->
          [ { df_comp = comp; df_node = ""; df_kind = "compilation";
              df_a = "present"; df_b = "absent" } ]
      | None, Some _ ->
          [ { df_comp = comp; df_node = ""; df_kind = "compilation";
              df_a = "absent"; df_b = "present" } ]
      | None, None -> [])
    keys

(* ---------- rendering ---------- *)

let truncate_line (s : string) : string =
  if String.length s <= 64 then s else String.sub s 0 61 ^ "..."

let render_deltas ?(limit = 20) (title : string) (ds : delta list) : string =
  let b = Buffer.create 256 in
  if ds = [] then Buffer.add_string b (Printf.sprintf "%s: no drift\n" title)
  else begin
    Buffer.add_string b
      (Printf.sprintf "%s: %d difference%s\n" title (List.length ds)
         (if List.length ds = 1 then "" else "s"));
    List.iteri
      (fun i d ->
        if i < limit then
          Buffer.add_string b
            (Printf.sprintf "  %-40s %s -> %s\n" d.dl_path
               (truncate_line d.dl_a) (truncate_line d.dl_b)))
      ds;
    if List.length ds > limit then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more\n" (List.length ds - limit))
  end;
  Buffer.contents b

let render_drift ?(limit = 40) (ds : drift list) : string =
  let b = Buffer.create 256 in
  if ds = [] then Buffer.add_string b "inline decisions: no drift\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "inline decisions: %d drift%s\n" (List.length ds)
         (if List.length ds = 1 then "" else "s"));
    List.iteri
      (fun i d ->
        if i < limit then
          Buffer.add_string b
            (Printf.sprintf "  %-24s %-44s %-18s %s -> %s\n" d.df_comp
               (if d.df_node = "" then "(compilation)" else d.df_node)
               d.df_kind d.df_a d.df_b))
      ds;
    if List.length ds > limit then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more\n" (List.length ds - limit))
  end;
  Buffer.contents b
