(** Declarative SLO monitors over {!Timeline} samples.

    A monitor holds a list of named detector specs and consumes
    [timeline_sample] rows — live as the engine emits them (the engine
    then emits each firing as a structured [slo_violation] trace event),
    or offline from a timeline file ([selvm slo --check]). Detector
    state is per (spec, source): tenants never share windows, mirroring
    the serving layer's isolation invariant, and everything derives from
    the simulated cycle stamps, so same-seed runs fire byte-identical
    violations.

    Violations are {b edge-triggered}: one firing when a detector enters
    violation, re-armed only after the condition clears — a storm
    persisting across ten samples is one incident, not ten. *)

type detector =
  | Window_rate of { field : string; window : int; limit : int }
      (** fires when the monotonic counter [field] grew by more than
          [limit] within the trailing [window] simulated cycles *)
  | Level of { field : string; limit : int }
      (** fires when the gauge [field] exceeds [limit] at a sample *)

type spec = { sp_name : string; sp_detector : detector }

val deopt_storm : ?window:int -> ?limit:int -> unit -> spec
(** Deopt rate over a sliding window: [Window_rate] on the sample's
    ["invalidations"] counter (default: >24 in 100k cycles). *)

val queue_saturation : ?window:int -> ?limit:int -> unit -> spec
(** Sustained shed/reject rate: [Window_rate] on ["sheds"]
    (default: >200 in 100k cycles). *)

val cache_thrash : ?limit:int -> unit -> spec
(** Evict→recompile cycles of one method: [Level] on ["evict_max"], the
    highest per-method eviction count (every eviction past the first
    implies an intervening recompile of the same method;
    default: >12). *)

val default_specs : spec list
(** The three monitors above at their default thresholds. *)

val find_spec : string -> spec option
(** Default spec by name ([deopt-storm] / [queue-saturation] /
    [cache-thrash]). *)

type violation = {
  v_slo : string;
  v_source : string;  (** tenant id, [""] outside serving *)
  v_cycles : int;
  v_field : string;
  v_value : int;      (** observed window growth, or level *)
  v_limit : int;
  v_window : int;     (** 0 for level detectors *)
}

type monitor

val monitor : spec list -> monitor

val feed :
  monitor -> source:string -> cycles:int ->
  (string * Support.Json.t) list -> violation list
(** Feeds one sample's flat gauge fields; returns the violations that
    fired at this sample (rising edges only) and accumulates them. *)

val violations : monitor -> violation list
(** Everything fired so far, chronological. *)

val violation_fields : violation -> (string * Support.Json.t) list
(** The [slo_violation] trace-event fields (slo, tenant, field, value,
    limit, window). *)

val check_rows : ?specs:spec list -> Timeline.row list -> violation list

val check_lines : ?specs:spec list -> string list -> (violation list, string) result

val check_file : ?specs:spec list -> string -> (violation list, string) result
(** Offline check of a timeline file (defaults to {!default_specs}) —
    what [selvm slo --check] exits nonzero on. *)

val render : violation list -> string
(** One line per violation, deterministic. *)
