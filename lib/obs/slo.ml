(* Declarative SLO monitors over timeline samples.

   A monitor consumes [timeline_sample] rows (live, as the engine emits
   them, or offline from a file) and fires structured violations when a
   windowed anomaly detector trips. Detection is per (spec, source):
   tenants never share detector state, mirroring the serving layer's
   isolation invariant, and every decision derives from the sample's
   cycle stamps — same-seed runs fire byte-identical violations.

   Violations are edge-triggered: one firing when a detector enters
   violation, re-armed only after the condition clears. A storm that
   persists across ten samples is one violation, not ten — traces stay
   bounded and a soak gate counts incidents, not samples. *)

type detector =
  | Window_rate of { field : string; window : int; limit : int }
      (* fires when a monotonic counter field grew by more than [limit]
         within the trailing [window] simulated cycles *)
  | Level of { field : string; limit : int }
      (* fires when a gauge field exceeds [limit] at a sample *)

type spec = { sp_name : string; sp_detector : detector }

(* The three fleet failure modes the serving layer exposes as sample
   gauges. Defaults are sized to stay quiet on the CI serve soak's
   configured capacities while still catching an order-of-magnitude
   regression; tests tighten them to force firings. *)

let deopt_storm ?(window = 100_000) ?(limit = 24) () : spec =
  {
    sp_name = "deopt-storm";
    sp_detector = Window_rate { field = "invalidations"; window; limit };
  }

let queue_saturation ?(window = 100_000) ?(limit = 200) () : spec =
  {
    sp_name = "queue-saturation";
    sp_detector = Window_rate { field = "sheds"; window; limit };
  }

let cache_thrash ?(limit = 12) () : spec =
  {
    sp_name = "cache-thrash";
    sp_detector = Level { field = "evict_max"; limit };
  }

let default_specs : spec list =
  [ deopt_storm (); queue_saturation (); cache_thrash () ]

let find_spec (name : string) : spec option =
  List.find_opt (fun s -> s.sp_name = name) default_specs

type violation = {
  v_slo : string;
  v_source : string;
  v_cycles : int;
  v_field : string;
  v_value : int;   (* the observed growth (window) or level *)
  v_limit : int;
  v_window : int;  (* 0 for level detectors *)
}

(* Per (spec, source) state: the sample history a window detector reads
   ((cycles, value), newest first) and the edge-trigger latch. *)
type cell = { mutable history : (int * int) list; mutable active : bool }

type monitor = {
  specs : spec list;
  cells : (string * string, cell) Hashtbl.t;
  mutable fired : violation list;  (* most recent first *)
}

let monitor (specs : spec list) : monitor =
  { specs; cells = Hashtbl.create 16; fired = [] }

let cell_for (mon : monitor) (spec : spec) (source : string) : cell =
  let key = (spec.sp_name, source) in
  match Hashtbl.find_opt mon.cells key with
  | Some c -> c
  | None ->
      let c = { history = []; active = false } in
      Hashtbl.replace mon.cells key c;
      c

let field_of (fields : (string * Support.Json.t) list) (name : string) :
    int option =
  Option.bind (List.assoc_opt name fields) Support.Json.to_int_opt

(* One spec against one sample: evaluate the detector, update state, and
   return the violation if this sample is a rising edge. *)
let step (mon : monitor) (spec : spec) ~(source : string) ~(cycles : int)
    (fields : (string * Support.Json.t) list) : violation option =
  let c = cell_for mon spec source in
  let fire ~field ~value ~limit ~window =
    if c.active then None
    else begin
      c.active <- true;
      Some
        {
          v_slo = spec.sp_name;
          v_source = source;
          v_cycles = cycles;
          v_field = field;
          v_value = value;
          v_limit = limit;
          v_window = window;
        }
    end
  in
  match spec.sp_detector with
  | Level { field; limit } -> (
      match field_of fields field with
      | None -> None
      | Some v ->
          if v > limit then fire ~field ~value:v ~limit ~window:0
          else begin
            c.active <- false;
            None
          end)
  | Window_rate { field; window; limit } -> (
      match field_of fields field with
      | None -> None
      | Some v ->
          let horizon = cycles - window in
          (* keep the newest entry at or before the horizon as the
             baseline; everything older is unreachable *)
          let rec trim kept = function
            | [] -> List.rev kept
            | (tc, tv) :: rest ->
                if tc <= horizon then List.rev ((tc, tv) :: kept)
                else trim ((tc, tv) :: kept) rest
          in
          c.history <- trim [] ((cycles, v) :: c.history);
          let baseline =
            match List.rev c.history with (_, oldest) :: _ -> oldest | [] -> v
          in
          let grew = v - baseline in
          if grew > limit then fire ~field ~value:grew ~limit ~window
          else begin
            c.active <- false;
            None
          end)

let violation_fields (v : violation) : (string * Support.Json.t) list =
  Support.Json.
    [
      ("slo", String v.v_slo);
      ("tenant", String v.v_source);
      ("field", String v.v_field);
      ("value", Int v.v_value);
      ("limit", Int v.v_limit);
      ("window", Int v.v_window);
    ]

(* Feed one sample. Fired violations are returned (for the caller to
   emit as [slo_violation] trace events) and accumulated on the
   monitor. *)
let feed (mon : monitor) ~(source : string) ~(cycles : int)
    (fields : (string * Support.Json.t) list) : violation list =
  let fired =
    List.filter_map (fun spec -> step mon spec ~source ~cycles fields) mon.specs
  in
  mon.fired <- List.rev_append fired mon.fired;
  fired

let violations (mon : monitor) : violation list = List.rev mon.fired

(* ---------- offline checking (selvm slo --check) ---------- *)

let fields_of_row (r : Timeline.row) : (string * Support.Json.t) list =
  match r.Timeline.r_fields with Support.Json.Obj fs -> fs | _ -> []

let check_rows ?(specs = default_specs) (rows : Timeline.row list) :
    violation list =
  let mon = monitor specs in
  List.iter
    (fun (r : Timeline.row) ->
      if r.Timeline.r_kind = "timeline_sample" then
        ignore
          (feed mon ~source:r.Timeline.r_source ~cycles:r.Timeline.r_cycles
             (fields_of_row r)))
    rows;
  violations mon

let check_lines ?specs (lines : string list) : (violation list, string) result =
  Result.map (check_rows ?specs) (Timeline.rows_of_lines lines)

let check_file ?specs (path : string) : (violation list, string) result =
  Result.map (check_rows ?specs) (Timeline.rows_of_file path)

let render (vs : violation list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string b
        (if v.v_window > 0 then
           Printf.sprintf "%-16s %-16s @%d  %s +%d > %d in %d cycles\n"
             v.v_slo v.v_source v.v_cycles v.v_field v.v_value v.v_limit
             v.v_window
         else
           Printf.sprintf "%-16s %-16s @%d  %s %d > %d\n" v.v_slo v.v_source
             v.v_cycles v.v_field v.v_value v.v_limit))
    vs;
  Buffer.contents b
