(* Trace digestion for `selvm events`: folds a JSONL event stream into the
   aggregate view the paper's evaluation cares about — how many
   compilations, how much code got installed and when, what the inliner
   decided, what the optimizer triggered. *)

type compile_event = {
  meth : string;
  size : int;
  at_cycles : int;
}

type t = {
  mutable total : int;
  mutable kinds : (string * int) list;      (* per-kind counts, insertion order *)
  mutable installs : compile_event list;    (* chronological *)
  mutable pending_installs : int;
  mutable invalidations : compile_event list;  (* size = misses at invalidation *)
  mutable bailouts : (string * string * int) list;  (* meth, reason, at_cycles *)
  mutable blacklisted : string list;  (* methods whose last bailout hit the cap *)
  mutable chaos_faults : (string * int) list;  (* injected faults by kind *)
  mutable inline_yes : int;
  mutable inline_no : int;
  mutable expand_yes : int;
  mutable expand_no : int;
  mutable canon_events : int;
  mutable nodes_deleted : int;
  mutable ic_sites : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable ic_megamorphic : int;
  mutable evictions : compile_event list;  (* size = IR nodes retired *)
  mutable sheds : (string * int) list;     (* by reason, first-seen order *)
  mutable serve_tenants : int;
  mutable queue_waits : int list;          (* cycles, arrival order *)
  mutable last_cycles : int;
}

let empty () =
  {
    total = 0;
    kinds = [];
    installs = [];
    pending_installs = 0;
    invalidations = [];
    bailouts = [];
    blacklisted = [];
    chaos_faults = [];
    inline_yes = 0;
    inline_no = 0;
    expand_yes = 0;
    expand_no = 0;
    canon_events = 0;
    nodes_deleted = 0;
    ic_sites = 0;
    ic_hits = 0;
    ic_misses = 0;
    ic_megamorphic = 0;
    evictions = [];
    sheds = [];
    serve_tenants = 0;
    queue_waits = [];
    last_cycles = 0;
  }

let bump_kind (s : t) (kind : string) : unit =
  s.kinds <-
    (if List.mem_assoc kind s.kinds then
       List.map (fun (k, n) -> if k = kind then (k, n + 1) else (k, n)) s.kinds
     else s.kinds @ [ (kind, 1) ])

let int_field j key =
  match Option.bind (Support.Json.member key j) Support.Json.to_int_opt with
  | Some n -> n
  | None -> 0

let str_field j key =
  match Option.bind (Support.Json.member key j) Support.Json.to_string_opt with
  | Some s -> s
  | None -> "?"

let add_event (s : t) (j : Support.Json.t) : unit =
  let kind = str_field j "ev" in
  s.total <- s.total + 1;
  bump_kind s kind;
  let cycles = int_field j "cycles" in
  if cycles > s.last_cycles then s.last_cycles <- cycles;
  match kind with
  | "install" ->
      s.installs <-
        s.installs @ [ { meth = str_field j "meth"; size = int_field j "size"; at_cycles = cycles } ]
  | "pending_install" -> s.pending_installs <- s.pending_installs + 1
  | "invalidate" ->
      s.invalidations <-
        s.invalidations
        @ [ { meth = str_field j "meth"; size = int_field j "misses"; at_cycles = cycles } ]
  | "compile_bailout" ->
      let meth = str_field j "meth" in
      s.bailouts <- s.bailouts @ [ (meth, str_field j "reason", cycles) ];
      if
        (match Support.Json.member "blacklisted" j with
        | Some (Support.Json.Bool b) -> b
        | _ -> false)
        && not (List.mem meth s.blacklisted)
      then s.blacklisted <- s.blacklisted @ [ meth ]
  | "chaos" ->
      let fault = str_field j "fault" in
      s.chaos_faults <-
        (if List.mem_assoc fault s.chaos_faults then
           List.map
             (fun (k, n) -> if k = fault then (k, n + 1) else (k, n))
             s.chaos_faults
         else s.chaos_faults @ [ (fault, 1) ])
  | "inline_decision" ->
      if str_field j "verdict" = "inline" then s.inline_yes <- s.inline_yes + 1
      else s.inline_no <- s.inline_no + 1
  | "expand_decision" ->
      if str_field j "verdict" = "expand" then s.expand_yes <- s.expand_yes + 1
      else s.expand_no <- s.expand_no + 1
  | "opt_round" ->
      s.canon_events <- s.canon_events + int_field j "canon";
      s.nodes_deleted <- s.nodes_deleted + int_field j "dce"
  | "ic_site" ->
      s.ic_sites <- s.ic_sites + 1;
      s.ic_hits <- s.ic_hits + int_field j "ic_hit";
      s.ic_misses <- s.ic_misses + int_field j "ic_miss";
      s.ic_megamorphic <- s.ic_megamorphic + int_field j "ic_megamorphic"
  | "evict" ->
      s.evictions <-
        s.evictions
        @ [ { meth = str_field j "meth"; size = int_field j "size"; at_cycles = cycles } ]
  | "shed" ->
      let reason = str_field j "reason" in
      s.sheds <-
        (if List.mem_assoc reason s.sheds then
           List.map
             (fun (k, n) -> if k = reason then (k, n + 1) else (k, n))
             s.sheds
         else s.sheds @ [ (reason, 1) ])
  | "serve_start" -> s.serve_tenants <- max s.serve_tenants (int_field j "tenants")
  | "serve_dequeue" -> s.queue_waits <- s.queue_waits @ [ int_field j "wait" ]
  | _ -> ()

(* Tolerant line scan: well-formed events with their 1-based line numbers,
   plus the malformed lines as (lineno, error). Blank lines are skipped.
   `selvm events` warns per error; [of_lines] stays strict for callers
   that want a hard failure. *)
let parse_lines (lines : string list) :
    (int * Support.Json.t) list * (int * string) list =
  let rec go lineno events errors = function
    | [] -> (List.rev events, List.rev errors)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) events errors rest
        else (
          match Support.Json.of_string line with
          | Ok j -> go (lineno + 1) ((lineno, j) :: events) errors rest
          | Error e -> go (lineno + 1) events ((lineno, e) :: errors) rest)
  in
  go 1 [] [] lines

let of_events (events : Support.Json.t list) : t =
  let s = empty () in
  List.iter (add_event s) events;
  s

(* One summary per harness run, keyed on the run_start markers the harness
   emits. Events before the first marker fold into a "(preamble)" segment;
   [] when the trace has no markers at all (single anonymous stream). *)
let split_runs (events : Support.Json.t list) : (string * t) list =
  let runs = ref [] in
  let current : (string * t) option ref = ref None in
  let close () = match !current with Some r -> runs := r :: !runs | None -> () in
  List.iter
    (fun j ->
      if str_field j "ev" = "run_start" then begin
        close ();
        current := Some (str_field j "label", empty ())
      end
      else begin
        (match !current with
        | None -> current := Some ("(preamble)", empty ())
        | Some _ -> ());
        match !current with
        | Some (_, s) -> add_event s j
        | None -> assert false
      end)
    events;
  close ();
  match List.rev !runs with
  | [ ("(preamble)", _) ] -> []  (* no markers: nothing to split *)
  | runs -> runs

(* Folds trace lines into a summary; the error names the first malformed
   line (1-based). *)
let of_lines (lines : string list) : (t, string) result =
  let s = empty () in
  let rec go lineno = function
    | [] -> Ok s
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) rest
        else (
          match Support.Json.of_string line with
          | Ok j ->
              add_event s j;
              go (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 lines

let of_file (path : string) : (t, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))

let installed_code_size (s : t) : int =
  List.fold_left (fun acc (c : compile_event) -> acc + c.size) 0 s.installs

let render (s : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%d events over %d simulated cycles\n\n" s.total s.last_cycles;
  pf "events by kind:\n";
  List.iter (fun (k, n) -> pf "  %-18s %d\n" k n) s.kinds;
  if s.installs <> [] then begin
    pf "\ncompile timeline (%d installs, %d IR nodes):\n" (List.length s.installs)
      (installed_code_size s);
    List.iter
      (fun (c : compile_event) ->
        pf "  @%-10d install %-24s %d nodes\n" c.at_cycles c.meth c.size)
      s.installs
  end;
  if s.pending_installs > 0 then
    pf "\npending (async) compilations queued: %d\n" s.pending_installs;
  if s.invalidations <> [] then begin
    pf "\ninvalidations:\n";
    List.iter
      (fun (c : compile_event) ->
        pf "  @%-10d invalidate %-21s %d spec misses\n" c.at_cycles c.meth c.size)
      s.invalidations
  end;
  if s.bailouts <> [] then begin
    pf "\ncompile bailouts:\n";
    List.iter
      (fun (meth, reason, at) -> pf "  @%-10d bailout %-24s %s\n" at meth reason)
      s.bailouts;
    if s.blacklisted <> [] then
      pf "  blacklisted (permanently interpreted): %s\n"
        (String.concat ", " s.blacklisted)
  end;
  if s.chaos_faults <> [] then begin
    pf "\nchaos faults injected:\n";
    List.iter (fun (k, n) -> pf "  %-18s %d\n" k n) s.chaos_faults
  end;
  if s.inline_yes + s.inline_no + s.expand_yes + s.expand_no > 0 then begin
    pf "\ninliner decisions:\n";
    pf "  expansions         %d accepted, %d declined\n" s.expand_yes s.expand_no;
    pf "  inlines            %d accepted, %d skipped\n" s.inline_yes s.inline_no
  end;
  if s.canon_events + s.nodes_deleted > 0 then begin
    pf "\noptimizer (root rounds):\n";
    pf "  canonicalizations  %d\n" s.canon_events;
    pf "  nodes deleted      %d\n" s.nodes_deleted
  end;
  if s.serve_tenants > 0 || s.evictions <> [] || s.sheds <> [] then begin
    pf "\nserving:\n";
    if s.serve_tenants > 0 then pf "  tenants            %d\n" s.serve_tenants;
    pf "  evictions          %d (%d IR nodes retired)\n"
      (List.length s.evictions)
      (List.fold_left (fun acc (c : compile_event) -> acc + c.size) 0 s.evictions);
    List.iter (fun (k, n) -> pf "  shed (%s)  %d\n" k n) s.sheds;
    if s.queue_waits <> [] then begin
      let n = List.length s.queue_waits in
      let sum = List.fold_left ( + ) 0 s.queue_waits in
      let mx = List.fold_left max 0 s.queue_waits in
      pf "  queue waits        %d serviced, mean %d cycles, max %d\n" n (sum / n) mx
    end
  end;
  if s.ic_sites > 0 then begin
    let d = s.ic_hits + s.ic_misses + s.ic_megamorphic in
    pf "\ninline caches (%d sites):\n" s.ic_sites;
    pf "  hits               %d (%.1f%% of %d dispatches)\n" s.ic_hits
      (100.0 *. float_of_int s.ic_hits /. float_of_int (max 1 d))
      d;
    pf "  misses             %d\n" s.ic_misses;
    pf "  megamorphic        %d\n" s.ic_megamorphic
  end;
  Buffer.contents buf
