(** Deterministic time-series telemetry: gauge snapshots streamed as
    JSONL on the simulated cycle clock.

    Rows share the {!Trace} event shape (one JSON object per line with
    ["ev"] and ["cycles"]) plus ["seq"], the global emission ordinal, so
    rows with equal cycle stamps still have a total, reproducible order —
    same-seed runs produce byte-identical timelines, chaos included.

    The sampler is passive: the engine and the fleet driver decide when a
    source is due (comparing its clock against {!interval}) and call
    {!sample} / {!fleet} with their gauges. With no timeline attached the
    engine's per-entry check is one [None] match — sampling is zero-cost
    when disabled. Schema: see docs/OBSERVABILITY.md. *)

type t

val default_interval : int
(** Simulated cycles between samples of one source (20k). *)

val make : ?interval:int -> (string -> unit) -> t
(** [make write] builds a sampler around a line writer (no trailing
    newline). [interval] is clamped to at least 1. *)

val interval : t -> int

val rows : t -> int
(** Rows emitted so far (the next row's ["seq"]). *)

val memory : ?interval:int -> unit -> t * (unit -> string list)
(** An in-memory timeline and a reader of the rows collected so far. *)

val with_file : ?interval:int -> string -> (t -> 'a) -> 'a
(** [with_file path f] runs [f] with a timeline writing JSONL to [path]
    (atomic: temp sibling + rename, like {!Trace.with_file}). *)

val record : t -> kind:string -> cycles:int -> (string * Support.Json.t) list -> unit
(** Low-level row emission; {!sample} and {!fleet} are the two kinds the
    engine and fleet driver use. *)

val sample : t -> source:string -> cycles:int -> (string * Support.Json.t) list -> unit
(** One [timeline_sample] row: the source's gauge fields, ["tenant"]
    set to [source], and a ["metrics"] snapshot of the full
    {!Metrics} registry (zeros while metrics recording is off — the row
    shape never varies). *)

val fleet : t -> cycles:int -> (string * Support.Json.t) list -> unit
(** One [timeline_fleet] row — the fleet driver's cross-tenant snapshot
    (queue/cache totals and the p50/p90/p99/max latency percentiles). *)

(** {2 Reading a timeline back} *)

type row = {
  r_kind : string;     (** [timeline_sample] or [timeline_fleet] *)
  r_cycles : int;
  r_seq : int;
  r_source : string;   (** the ["tenant"] field; [""] on fleet rows *)
  r_fields : Support.Json.t;  (** the whole row *)
}

val row_of_json : Support.Json.t -> row option

val rows_of_lines : string list -> (row list, string) result
(** Strict scan: the first malformed line is the error. Rows missing
    ["ev"]/["cycles"] are skipped. *)

val rows_of_file : string -> (row list, string) result

val field : row -> string -> int option
(** Top-level int field of the row ([None] when absent or non-int). *)
