(* Structured JIT telemetry: a zero-cost-when-disabled event sink.

   The engine, the inliner, and the optimizer driver emit structured
   events here — compilation requests, installs, invalidations, per-round
   inlining decisions, per-phase optimization counters. With no sink
   installed every emission site reduces to one [None] check and the
   field-building closure is never run, so the differential suites see
   bit-identical behavior whether or not this module is linked hot.

   Events are stamped with the *simulated* cycle clock (never wall time),
   so two runs of the same program produce byte-identical traces. One
   event per line, serialized via [Support.Json] (JSONL). *)

type sink = {
  mutable write : string -> unit;  (* receives one serialized event (no newline) *)
  mutable clock : unit -> int;     (* the simulated cycle clock *)
  mutable events : int;            (* emitted so far *)
}

let current : sink option ref = ref None

let enabled () = !current <> None

let install (s : sink) : unit = current := Some s

let uninstall () : unit = current := None

let set_clock (clock : unit -> int) : unit =
  match !current with None -> () | Some s -> s.clock <- clock

(* [emit kind fields] appends one event. [fields] is a closure so that
   disabled tracing never pays for field construction. *)
let emit (kind : string) (fields : unit -> (string * Support.Json.t) list) : unit =
  match !current with
  | None -> ()
  | Some s ->
      let j =
        Support.Json.Obj
          (("ev", Support.Json.String kind)
          :: ("cycles", Support.Json.Int (s.clock ()))
          :: fields ())
      in
      s.write (Support.Json.to_string j);
      s.events <- s.events + 1

(* [scoped s f] installs [s] for the duration of [f], restoring whatever
   sink (or none) was active before — exception-safe. *)
let scoped (s : sink) (f : unit -> 'a) : 'a =
  let saved = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> current := saved) f

(* ---------- sinks ---------- *)

let channel_sink (oc : out_channel) : sink =
  {
    write =
      (fun line ->
        output_string oc line;
        output_char oc '\n');
    clock = (fun () -> 0);
    events = 0;
  }

(* An in-memory sink plus a reader of the lines collected so far, in
   emission order — what the bench harness and the tests use. *)
let memory_sink () : sink * (unit -> string list) =
  let lines = ref [] in
  let s =
    { write = (fun line -> lines := line :: !lines); clock = (fun () -> 0); events = 0 }
  in
  (s, fun () -> List.rev !lines)

(* [with_file path f] traces [f] into [path] (JSONL). The write is
   atomic (temp sibling + rename): an interrupted or failing run leaves
   no truncated trace behind, only a complete one or none at all. *)
let with_file (path : string) (f : unit -> 'a) : 'a =
  Support.Io.with_atomic_out path (fun oc -> scoped (channel_sink oc) f)
