(** Cross-run drift diffing for [selvm diff]: metrics exports, timeline
    streams, and the inline-decision trees {!Explain} rebuilds.

    Comparisons are structural and deterministic. Two same-seed runs of
    the same build diff to nothing; a perturbed inlining threshold
    surfaces as per-callsite verdict flips and priority/threshold
    deltas — the reviewable decision-drift report the warm-start roadmap
    item depends on. *)

type delta = { dl_path : string; dl_a : string; dl_b : string }

val diff_json : Support.Json.t -> Support.Json.t -> delta list
(** Structural diff: objects over the sorted union of keys ("(absent)"
    for a missing side), lists by index (plus a [length] delta), scalars
    by serialized value. Paths are dotted. *)

val diff_metrics : Support.Json.t -> Support.Json.t -> delta list
(** {!diff_json}, named for the metrics-export use. *)

val diff_lines : string list -> string list -> delta list
(** Line-oriented diff for byte-identical-by-contract streams
    (timelines, traces): one delta per differing line number plus a
    [length] delta on tail mismatch. *)

type drift = {
  df_comp : string;  (** compilation identity: root method, ["#k"] for recompiles *)
  df_node : string;  (** callsite identity path ([target@m:site/...]); [""] for the compilation itself *)
  df_kind : string;
      (** [expand-verdict] / [inline-verdict] / [*-priority] /
          [*-threshold] / [*-benefit] / [*-cost] / [node] /
          [compilation] *)
  df_a : string;
  df_b : string;
}

val diff_decisions :
  Explain.compilation list -> Explain.compilation list -> drift list
(** Pairs compilations by (root method, occurrence) and tree nodes by
    their stable (target, profile-site) identity path, then reports
    verdict flips and final-decision term deltas per phase, and
    nodes/compilations present on only one side. *)

val render_deltas : ?limit:int -> string -> delta list -> string
val render_drift : ?limit:int -> drift list -> string
