(** A process-wide metrics registry: counters, gauges, and log2-bucketed
    histograms.

    Recording is zero-cost when disabled, like {!Trace}: sites hold a
    handle obtained once (typically at module initialization) and every
    record call is one boolean check. Registration is idempotent — the
    same name always returns the same handle — so libraries declare their
    instruments at top level and the exported name set is stable whether
    or not a run ever records.

    Export ({!to_json}) is deterministic: sections sort by name, values
    derive only from the simulated clocks. The JSON schema is documented
    in docs/OBSERVABILITY.md and consumed by `selvm run --metrics FILE`
    and the bench smoke. *)

type counter
type gauge

type histogram
(** Log2-bucketed: bucket [i] holds values [v] with
    [2^(i-1) <= v <= 2^i - 1] (bucket 0 holds 0), plus exact count, sum,
    min and max. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val scoped : (unit -> 'a) -> 'a
(** Enables recording for the duration of the callback, restoring the
    previous state afterwards (exception-safe). *)

val counter : string -> counter
(** Registers (or retrieves) the counter with this name.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
(** No-op while disabled; likewise {!add}, {!set} and {!observe}. *)

val add : counter -> int -> unit
val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Records [max 0 v]. *)

val percentile : histogram -> float -> int
(** Quantile estimate: the upper bound of the bucket where the cumulative
    count crosses [q * count], clamped by the exact observed maximum
    ([q = 1.0] is exactly the max). 0 on an empty histogram. *)

val reset : unit -> unit
(** Zeroes every registered metric, keeping the registrations (tests). *)

val to_json : unit -> Support.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with each
    section sorted by name. Histograms serialize count/sum/min/max,
    p50/p90, a ["bucketing": "log2"] marker, and their populated buckets
    as [{"ge", "le", "n"}] triples — both bounds are explicit (inclusive)
    so external tools need not hardcode the log2 bucketing. *)
