(* Deterministic time-series telemetry: a sampler that streams gauge
   snapshots as JSONL rows on the simulated cycle clock.

   Rows share the trace event shape — one JSON object per line with
   ["ev"] and ["cycles"] — so the tolerant [Summary.parse_lines] scanner
   and the golden trace-schema machinery handle them unchanged, but a
   timeline is its own stream (its own file or memory sink), never mixed
   into a trace. Every row additionally carries ["seq"], the global
   emission ordinal: two rows with equal cycle stamps (two tenants
   sampled in the same round-robin turn) still have a total, reproducible
   order, which is what makes same-seed timelines byte-identical.

   Sampling cadence is the caller's: the engine checks its own [due]
   cycle mark at method entries, the fleet driver once per round-robin
   turn, both against {!interval}. Nothing here reads wall time. *)

type t = {
  tl_write : string -> unit;
  tl_interval : int;
  mutable tl_rows : int;
}

(* Default cadence in simulated cycles between samples of one source.
   Coarse enough that a soak's timeline stays a few hundred rows, fine
   enough that a deopt storm spans several samples. *)
let default_interval = 20_000

let make ?(interval = default_interval) (write : string -> unit) : t =
  { tl_write = write; tl_interval = max 1 interval; tl_rows = 0 }

let interval (tl : t) : int = tl.tl_interval
let rows (tl : t) : int = tl.tl_rows

let memory ?interval () : t * (unit -> string list) =
  let lines = ref [] in
  let tl = make ?interval (fun line -> lines := line :: !lines) in
  (tl, fun () -> List.rev !lines)

let with_file ?interval (path : string) (f : t -> 'a) : 'a =
  Support.Io.with_atomic_out path (fun oc ->
      f
        (make ?interval (fun line ->
             output_string oc line;
             output_char oc '\n')))

let record (tl : t) ~(kind : string) ~(cycles : int)
    (fields : (string * Support.Json.t) list) : unit =
  let j =
    Support.Json.Obj
      (("ev", Support.Json.String kind)
      :: ("cycles", Support.Json.Int cycles)
      :: ("seq", Support.Json.Int tl.tl_rows)
      :: fields)
  in
  tl.tl_write (Support.Json.to_string j);
  tl.tl_rows <- tl.tl_rows + 1

(* A per-source sample: the source's own gauges plus a snapshot of the
   process-wide metrics registry (zeros while metrics recording is off —
   still deterministic, and the row shape never varies). *)
let sample (tl : t) ~(source : string) ~(cycles : int)
    (fields : (string * Support.Json.t) list) : unit =
  record tl ~kind:"timeline_sample" ~cycles
    (("tenant", Support.Json.String source)
    :: (fields @ [ ("metrics", Metrics.to_json ()) ]))

let fleet (tl : t) ~(cycles : int) (fields : (string * Support.Json.t) list) :
    unit =
  record tl ~kind:"timeline_fleet" ~cycles fields

(* ---------- reading a timeline back ---------- *)

type row = {
  r_kind : string;
  r_cycles : int;
  r_seq : int;
  r_source : string;  (* "" on fleet rows *)
  r_fields : Support.Json.t;
}

let row_of_json (j : Support.Json.t) : row option =
  match
    ( Option.bind (Support.Json.member "ev" j) Support.Json.to_string_opt,
      Option.bind (Support.Json.member "cycles" j) Support.Json.to_int_opt )
  with
  | Some kind, Some cycles ->
      Some
        {
          r_kind = kind;
          r_cycles = cycles;
          r_seq =
            Option.value ~default:0
              (Option.bind (Support.Json.member "seq" j) Support.Json.to_int_opt);
          r_source =
            Option.value ~default:""
              (Option.bind (Support.Json.member "tenant" j)
                 Support.Json.to_string_opt);
          r_fields = j;
        }
  | _ -> None

let rows_of_lines (lines : string list) : (row list, string) result =
  let events, errors = Summary.parse_lines lines in
  match errors with
  | (n, e) :: _ -> Error (Printf.sprintf "line %d: %s" n e)
  | [] -> Ok (List.filter_map (fun (_, j) -> row_of_json j) events)

let rows_of_file (path : string) : (row list, string) result =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> rows_of_lines lines
  | exception Sys_error e -> Error e

(* Field access on a row, for the SLO detectors and `selvm top`. *)
let field (r : row) (name : string) : int option =
  Option.bind (Support.Json.member name r.r_fields) Support.Json.to_int_opt
