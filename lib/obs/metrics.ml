(* A process-wide metrics registry: counters, gauges, and log2-bucketed
   histograms over the simulated clocks.

   Zero-cost when disabled, like [Trace]: a recording site holds a handle
   obtained once (usually at module initialization) and every record call
   is one boolean check before touching the handle. Registration is
   idempotent — asking for an existing name returns the same handle — so
   libraries can declare their instruments at top level and the registry
   carries a stable set of names whether or not a run ever records.

   Export is deterministic: [to_json] sorts every section by metric name
   and histograms serialize only their populated buckets, so two runs of
   the same program produce byte-identical metrics files (values derive
   from the simulated cycle clock, never wall time). *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

(* Bucket [i] counts observed values [v] with [v <= 2^i - 1] and
   [v > 2^(i-1) - 1]: 0 lands in bucket 0, 1 in bucket 1, 2–3 in bucket 2,
   4–7 in bucket 3, … — the log2 bucketing the compile-latency and
   inline-depth distributions want. 63 buckets cover every non-negative
   OCaml int. *)
let nbuckets = 63

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled (b : bool) : unit = enabled_flag := b

(* [scoped f] enables recording for the duration of [f], restoring the
   previous state afterwards (exception-safe). *)
let scoped (f : unit -> 'a) : 'a =
  let saved = !enabled_flag in
  enabled_flag := true;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

let register (name : string) (fresh : unit -> metric) : metric =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = fresh () in
      Hashtbl.replace registry name m;
      m

let counter (name : string) : counter =
  match register name (fun () -> Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is already registered as a different metric kind")

let gauge (name : string) : gauge =
  match register name (fun () -> Gauge { g_name = name; g_value = 0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is already registered as a different metric kind")

let histogram (name : string) : histogram =
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            h_count = 0;
            h_sum = 0;
            h_min = 0;
            h_max = 0;
            h_buckets = Array.make nbuckets 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is already registered as a different metric kind")

let incr (c : counter) : unit = if !enabled_flag then c.c_value <- c.c_value + 1

let add (c : counter) (n : int) : unit = if !enabled_flag then c.c_value <- c.c_value + n

let set (g : gauge) (v : int) : unit = if !enabled_flag then g.g_value <- v

(* Smallest [i] with [v <= 2^i - 1], i.e. the bit width of [v]. *)
let bucket_of (v : int) : int =
  let rec go i bound = if v <= bound then i else go (i + 1) ((bound * 2) + 1) in
  go 0 0

let bucket_le (i : int) : int = (1 lsl i) - 1

let observe (h : histogram) (v : int) : unit =
  if !enabled_flag then begin
    let v = max 0 v in
    if h.h_count = 0 || v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    let b = min (bucket_of v) (nbuckets - 1) in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

(* Quantile estimate from the buckets: the upper bound of the first bucket
   whose cumulative count reaches [q * count], clamped by the exact
   maximum. [q = 1.0] is the exact max. *)
let percentile (h : histogram) (q : float) : int =
  if h.h_count = 0 then 0
  else begin
    let want =
      let w = int_of_float (ceil (q *. float_of_int h.h_count)) in
      min (max w 1) h.h_count
    in
    let rec go i acc =
      if i >= nbuckets then h.h_max
      else
        let acc = acc + h.h_buckets.(i) in
        if acc >= want then min (bucket_le i) h.h_max else go (i + 1) acc
    in
    go 0 0
  end

(* Zeroes every registered metric but keeps the registrations (tests; a
   fresh CLI process never needs it). *)
let reset () : unit =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0;
          Array.fill h.h_buckets 0 nbuckets 0)
    registry

(* Inclusive lower bound of bucket [i]: 0 for bucket 0, else one past the
   previous bucket's upper bound. *)
let bucket_ge (i : int) : int = if i = 0 then 0 else bucket_le (i - 1) + 1

let histogram_json (h : histogram) : Support.Json.t =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets :=
        Support.Json.Obj
          [
            ("ge", Support.Json.Int (bucket_ge i));
            ("le", Support.Json.Int (bucket_le i));
            ("n", Support.Json.Int h.h_buckets.(i));
          ]
        :: !buckets
  done;
  Support.Json.Obj
    [
      ("count", Support.Json.Int h.h_count);
      ("sum", Support.Json.Int h.h_sum);
      ("min", Support.Json.Int h.h_min);
      ("max", Support.Json.Int h.h_max);
      ("p50", Support.Json.Int (percentile h 0.5));
      ("p90", Support.Json.Int (percentile h 0.9));
      ("bucketing", Support.Json.String "log2");
      ("buckets", Support.Json.List !buckets);
    ]

let to_json () : Support.Json.t =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  let names = List.sort compare names in
  let section pick =
    List.filter_map
      (fun name -> Option.map (fun j -> (name, j)) (pick (Hashtbl.find registry name)))
      names
  in
  Support.Json.Obj
    [
      ( "counters",
        Support.Json.Obj
          (section (function Counter c -> Some (Support.Json.Int c.c_value) | _ -> None))
      );
      ( "gauges",
        Support.Json.Obj
          (section (function Gauge g -> Some (Support.Json.Int g.g_value) | _ -> None)) );
      ( "histograms",
        Support.Json.Obj
          (section (function Histogram h -> Some (histogram_json h) | _ -> None)) );
    ]
