(** Structured JIT telemetry: a zero-cost-when-disabled event sink.

    Emission sites in the engine, inliner, and optimizer driver call
    {!emit} with a field-building closure; with no sink installed the call
    is one [None] check and the closure never runs. Events carry the
    simulated cycle clock (never wall time) so identical runs produce
    byte-identical JSONL traces.

    Event schema: see docs/OBSERVABILITY.md. Every event is one
    [Support.Json] object per line with at least ["ev"] (the kind) and
    ["cycles"] (the simulated clock at emission). *)

type sink = {
  mutable write : string -> unit;
      (** receives one serialized event, without the trailing newline *)
  mutable clock : unit -> int;  (** the simulated cycle clock *)
  mutable events : int;  (** events emitted into this sink so far *)
}

val enabled : unit -> bool
(** Is a sink installed? Emission sites may pre-check this to skip
    expensive derived metrics entirely. *)

val install : sink -> unit
(** Makes [sink] the ambient sink until {!uninstall} (or another
    {!install}). The engine stamps it with its VM clock on creation. *)

val uninstall : unit -> unit

val set_clock : (unit -> int) -> unit
(** Points the ambient sink's clock at a simulated cycle counter; no-op
    when tracing is disabled. *)

val emit : string -> (unit -> (string * Support.Json.t) list) -> unit
(** [emit kind fields] writes one event. [fields] is forced only when a
    sink is installed. *)

val scoped : sink -> (unit -> 'a) -> 'a
(** Installs the sink for the duration of the callback, then restores the
    previously ambient sink (exception-safe). *)

val channel_sink : out_channel -> sink
(** A sink appending one line per event to the channel. The caller owns
    (and closes) the channel. *)

val memory_sink : unit -> sink * (unit -> string list)
(** An in-memory sink and a reader returning the lines collected so far
    in emission order. *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] runs [f] with a fresh file sink writing JSONL to
    [path], closing it on exit. *)
