(** Inline-tree reconstruction for [selvm explain].

    Folds a trace's expand_decision / inline_decision / inline_round
    events back into the paper's inline trees, one per compilation span
    (compile_start … compile_done/compile_bailout; the engine is
    non-reentrant, so spans never interleave). Decisions outside any span
    — a standalone [Inliner.Algorithm.compile] run — synthesize a span
    keyed by the decision's root method. Round numbers are inferred from
    the inline_round markers inside the span.

    Rendering is deterministic: node order is ascending node id and every
    number comes from the events themselves (simulated cycles, never wall
    time). *)

type phase = Expand | Inline

type decision = {
  d_round : int;
  d_phase : phase;
  d_verdict : string;        (** [expand]/[decline] or [inline]/[skip] *)
  d_benefit : float;         (** B_L (expand) or the analysis tuple's benefit *)
  d_cost : float;            (** |ir(n)| (expand) or the tuple's cost *)
  d_penalty : float option;  (** ψ (Eq. 7); expansion decisions only *)
  d_threshold : float;       (** the gate value the verdict compared against *)
  d_priority : float;        (** P(n) (expand) or the benefit/cost ratio *)
  d_cluster : bool;          (** spliced as a cluster member, not gated *)
  d_context : int;           (** tree size (expand) / root size (inline) *)
  d_at_cycles : int;
}

type cnode = {
  x_nid : int;
  x_parent : int;            (** parent node id; -1 for root children *)
  x_target : string;         (** method name, or [?selector] while virtual *)
  x_site : int * int;        (** declaring method id, site ordinal *)
  x_callsite : int;
  x_depth : int;             (** 1 for direct children of the root *)
  mutable x_decisions : decision list;  (** chronological *)
  mutable x_children : cnode list;      (** ascending node id *)
}

type compilation = {
  c_meth : string;
  c_m : int;
  c_start_cycles : int;
  c_rounds : int;
  c_outcome : string;
  c_roots : cnode list;
}

val of_events : Support.Json.t list -> compilation list

val of_lines : string list -> (compilation list, string) result
(** Blank lines are skipped; the error names the first malformed line. *)

val of_file : string -> (compilation list, string) result

val render : compilation list -> string
(** The ASCII inline trees: per compilation a header line and one node
    per callsite with its decision history and final benefit / cost /
    penalty / priority / threshold terms. *)

val render_why : compilation list -> meth:string -> site:int option -> string
(** Full decision provenance for every callsite whose target label equals
    [meth] (and whose site ordinal equals [site] when given), across all
    compilations in the trace. *)
