(** Trace digestion for [selvm events]: folds a JSONL event stream (the
    format {!Trace} emits, documented in docs/OBSERVABILITY.md) into the
    aggregates the paper's evaluation reads off the compiler — compile
    timeline, installed code size, invalidations, inliner decisions,
    optimizer counters. *)

type compile_event = {
  meth : string;
  size : int;  (** IR nodes for installs; spec-miss count for invalidations *)
  at_cycles : int;
}

type t = {
  mutable total : int;
  mutable kinds : (string * int) list;  (** per-kind counts, first-seen order *)
  mutable installs : compile_event list;  (** chronological *)
  mutable pending_installs : int;
  mutable invalidations : compile_event list;
  mutable bailouts : (string * string * int) list;
      (** contained compile failures as (method, reason, at_cycles) *)
  mutable blacklisted : string list;
      (** methods whose bailout hit the failure cap *)
  mutable chaos_faults : (string * int) list;
      (** injected chaos faults by kind, first-seen order *)
  mutable inline_yes : int;
  mutable inline_no : int;
  mutable expand_yes : int;
  mutable expand_no : int;
  mutable canon_events : int;
  mutable nodes_deleted : int;
  mutable ic_sites : int;  (** ic_site events seen (one per dispatched site) *)
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable ic_megamorphic : int;
  mutable evictions : compile_event list;
      (** code-cache retirements; [size] is the IR nodes released *)
  mutable sheds : (string * int) list;
      (** compile requests dropped by admission control, by reason *)
  mutable serve_tenants : int;
      (** fleet size of the largest [serve_start] seen (0 outside serving) *)
  mutable queue_waits : int list;
      (** per-serviced-request queue waits in cycles, arrival order *)
  mutable last_cycles : int;
}

val empty : unit -> t

val add_event : t -> Support.Json.t -> unit
(** Folds one parsed event into the summary. Unknown kinds still count
    toward [total]/[kinds]. *)

val parse_lines : string list -> (int * Support.Json.t) list * (int * string) list
(** Tolerant scan: the well-formed events with their 1-based line numbers,
    plus the malformed lines as (line, error). Blank lines are skipped.
    [selvm events] warns per malformed line; {!of_lines} stays strict. *)

val of_events : Support.Json.t list -> t

val split_runs : Support.Json.t list -> (string * t) list
(** One summary per harness run, split on the [run_start] markers the
    benchmark harness emits and labelled by the marker's [label]. Events
    before the first marker fold into a ["(preamble)"] segment. Returns
    [[]] when the trace has no markers (single anonymous stream). *)

val of_lines : string list -> (t, string) result
(** Blank lines are skipped; the error names the first malformed line. *)

val of_file : string -> (t, string) result

val installed_code_size : t -> int
(** Sum of installed sizes over the trace — the Table I metric as seen by
    the event stream. *)

val render : t -> string
(** Human-readable multi-line report. *)
